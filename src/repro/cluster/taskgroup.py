"""Task groups — the unit of queueing on a compute node (paper §IV.D).

"During the task assignment process, a task group is considered as a
single arrival unit and dedicated to one slot in the queue."  The grouping
*policy* (merge/split decisions) is part of the core contribution
(:mod:`repro.core.grouping`); this module provides the platform-level data
structure plus the processing-weight arithmetic (Eq. 10).

Eq. 10 interpretation (DESIGN.md A1): the processing weight of a group is
its *aggregate demanded processing rate*,

    ``pw = Σ si / mean_i(di − t)``

— total outstanding work divided by the mean remaining deadline window.
It is dimensionally an MI-per-time rate, directly comparable to the node
processing capacity ``PCc`` (Eq. 2) inside the error signal (Eq. 9).
Tight deadlines (high priority) raise ``pw``; larger groups raise ``pw``.
"""

from __future__ import annotations

from itertools import count
from typing import Callable, Iterable, Optional, Sequence

from ..sim.events import Event
from ..workload.priorities import Priority
from ..workload.task import Task

__all__ = ["TaskGroup", "processing_weight"]

_gid_counter = count()


def processing_weight(tasks: Sequence[Task], at_time: float) -> float:
    """Eq. 10: aggregate demanded processing rate of *tasks* at *at_time*.

    Remaining deadline windows are floored at a small epsilon so that
    already-late tasks produce a very large (urgent) weight rather than a
    negative or infinite one.
    """
    if not tasks:
        raise ValueError("cannot compute processing weight of an empty group")
    eps = 1e-6
    total_size = sum(t.size_mi for t in tasks)
    mean_window = sum(max(t.deadline - at_time, eps) for t in tasks) / len(tasks)
    return total_size / mean_window


class TaskGroup:
    """An ordered bundle of tasks occupying one node-queue slot.

    Tasks are kept in EDF (earliest-deadline-first) order, as both merge
    variants in §IV.D.1 prescribe.
    """

    def __init__(
        self,
        tasks: Iterable[Task],
        created_at: float,
        mode: str = "mixed",
    ) -> None:
        task_list = sorted(tasks, key=lambda t: t.deadline)
        if not task_list:
            raise ValueError("a task group must contain at least one task")
        self.gid = next(_gid_counter)
        self.tasks: list[Task] = task_list
        self.created_at = float(created_at)
        self.mode = mode
        #: Processing weight frozen at creation time (Eq. 10).
        self.pw = processing_weight(task_list, created_at)

        # -- assignment / execution record (filled by node & scheduler) --
        self.node_id: Optional[str] = None
        self.assigned_at: Optional[float] = None
        self.dispatched_at: Optional[float] = None
        #: Error feedback value (Eq. 9) recorded at assignment.
        self.error: Optional[float] = None
        self._remaining = len(task_list)
        #: Triggered (by the executing node) when every task completes.
        self.completion: Optional[Event] = None
        self._complete_callbacks: list[Callable[["TaskGroup"], None]] = []
        #: Set when the assigned node failed before the group completed;
        #: a cancelled group never completes and fires no callbacks.
        self.cancelled = False

    # -- structure -------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)

    @property
    def size_mi(self) -> float:
        """Total computational size of the group."""
        return sum(t.size_mi for t in self.tasks)

    @property
    def priority(self) -> Priority:
        """Most urgent priority present in the group."""
        return min(t.priority for t in self.tasks)

    @property
    def is_identical_priority(self) -> bool:
        """True if all member tasks share one priority class."""
        first = self.tasks[0].priority
        return all(t.priority == first for t in self.tasks)

    def edf_order(self) -> list[Task]:
        """Member tasks in earliest-deadline-first order."""
        return list(self.tasks)

    # -- completion tracking (driven by the executing node) --------------
    @property
    def remaining(self) -> int:
        """Number of member tasks not yet completed."""
        return self._remaining

    @property
    def completed(self) -> bool:
        return self._remaining == 0

    def on_complete(self, callback: Callable[["TaskGroup"], None]) -> None:
        """Register *callback* to fire when the whole group completes."""
        if self.completed:
            callback(self)
        else:
            self._complete_callbacks.append(callback)

    def cancel(self) -> None:
        """Abandon the group (node failure); completion never fires."""
        self.cancelled = True
        self._complete_callbacks.clear()

    def task_done(self) -> None:
        """Mark one member task as completed (node executor hook)."""
        if self.cancelled:
            return
        if self._remaining <= 0:
            raise RuntimeError(f"group {self.gid}: task_done beyond group size")
        self._remaining -= 1
        if self._remaining == 0:
            if self.completion is not None and not self.completion.triggered:
                self.completion.succeed(self)
            callbacks, self._complete_callbacks = self._complete_callbacks, []
            for cb in callbacks:
                cb(self)

    # -- feedback ----------------------------------------------------------
    def reward(self) -> int:
        """Eq. 8: number of member tasks that met their deadline.

        Only valid once the group has completed.
        """
        if not self.completed:
            raise RuntimeError(f"group {self.gid} has not completed")
        return sum(1 for t in self.tasks if t.met_deadline)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<TaskGroup gid={self.gid} n={len(self.tasks)} mode={self.mode} "
            f"pw={self.pw:.1f} remaining={self._remaining}>"
        )
