"""Target-system topology builder (paper §III.B, §V.A).

The paper's platform: 5–10 resource sites, each with 5–20 heterogeneous
compute nodes of 4–6 processors; processor speeds U(500, 1000) MIPS;
``pmax = 95 W``, ``pmin = 48 W``.  :class:`PlatformSpec` captures these
ranges; :func:`build_system` realizes a concrete topology from seeded RNG
streams so that every experiment is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..energy.accounting import SystemEnergy, system_energy
from ..energy.power_model import (
    PowerProfile,
    constant_power_profile,
    proportional_power_profile,
)
from ..sim.core import Environment
from ..sim.rng import RandomStreams
from .heterogeneity import DEFAULT_MEAN_SPEED_MIPS, speeds_with_cv
from .node import DEFAULT_QUEUE_SLOTS, ComputeNode, SleepPolicy
from .processor import SPEED_RANGE_MIPS, Processor
from .site import ResourceSite

__all__ = ["PlatformSpec", "System", "build_system"]


@dataclass(frozen=True)
class PlatformSpec:
    """Parameter ranges describing a PDCS platform.

    Ranges are inclusive ``(lo, hi)`` tuples sampled per site/node; pass
    ``lo == hi`` for a fixed value.
    """

    num_sites: int = 5
    nodes_per_site: tuple[int, int] = (5, 20)
    procs_per_node: tuple[int, int] = (4, 6)
    #: Uniform speed range in MIPS; ignored when ``heterogeneity_cv`` set.
    speed_range_mips: tuple[float, float] = SPEED_RANGE_MIPS
    #: If set, synthesize speeds with this coefficient of variation
    #: (Experiment 3) instead of the uniform range.
    heterogeneity_cv: Optional[float] = None
    mean_speed_mips: float = DEFAULT_MEAN_SPEED_MIPS
    queue_slots: int = DEFAULT_QUEUE_SLOTS
    #: "constant" (§V.A: pmax=95, pmin=48) or "proportional" (§III.C).
    power_model: str = "constant"
    sleep_policy: SleepPolicy = field(default_factory=SleepPolicy)
    split_enabled: bool = True

    def __post_init__(self) -> None:
        if self.num_sites <= 0:
            raise ValueError("num_sites must be positive")
        for name, (lo, hi) in (
            ("nodes_per_site", self.nodes_per_site),
            ("procs_per_node", self.procs_per_node),
        ):
            if not 0 < lo <= hi:
                raise ValueError(f"invalid range for {name}: ({lo}, {hi})")
        lo, hi = self.speed_range_mips
        if not 0 < lo <= hi:
            raise ValueError(f"invalid speed range {self.speed_range_mips}")
        if self.heterogeneity_cv is not None and not 0 <= self.heterogeneity_cv < 2:
            raise ValueError("heterogeneity_cv must lie in [0, 2)")
        if self.queue_slots <= 0:
            raise ValueError("queue_slots must be positive")
        if self.power_model not in ("constant", "proportional"):
            raise ValueError(f"unknown power model {self.power_model!r}")

    def to_dict(self) -> dict:
        """JSON-safe representation (inverse of :meth:`from_dict`).

        Worker processes and checkpoint journals carry platform specs by
        value, so the encoding uses only JSON scalar/list/dict types.
        """
        return {
            "num_sites": self.num_sites,
            "nodes_per_site": list(self.nodes_per_site),
            "procs_per_node": list(self.procs_per_node),
            "speed_range_mips": list(self.speed_range_mips),
            "heterogeneity_cv": self.heterogeneity_cv,
            "mean_speed_mips": self.mean_speed_mips,
            "queue_slots": self.queue_slots,
            "power_model": self.power_model,
            "sleep_policy": self.sleep_policy.to_dict(),
            "split_enabled": self.split_enabled,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PlatformSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        cv = data["heterogeneity_cv"]
        return cls(
            num_sites=int(data["num_sites"]),
            nodes_per_site=tuple(data["nodes_per_site"]),
            procs_per_node=tuple(data["procs_per_node"]),
            speed_range_mips=tuple(float(v) for v in data["speed_range_mips"]),
            heterogeneity_cv=None if cv is None else float(cv),
            mean_speed_mips=float(data["mean_speed_mips"]),
            queue_slots=int(data["queue_slots"]),
            power_model=data["power_model"],
            sleep_policy=SleepPolicy.from_dict(data["sleep_policy"]),
            split_enabled=bool(data["split_enabled"]),
        )


class System:
    """A realized PDCS platform: sites, nodes, processors."""

    def __init__(self, env: Environment, sites: Sequence[ResourceSite]) -> None:
        if not sites:
            raise ValueError("a system needs at least one site")
        self.env = env
        self.sites = list(sites)
        self._by_id = {s.site_id: s for s in self.sites}
        # The topology never changes after construction (failures toggle
        # node availability, not membership), so the flattened views the
        # metering and sampling loops walk every cycle are built once.
        self._nodes = [n for s in self.sites for n in s.nodes]
        self._processors = [p for n in self._nodes for p in n.processors]
        self._num_processors = sum(n.num_processors for n in self._nodes)
        self._slowest_speed_mips = min(
            p.speed_mips for p in self._processors
        )
        # Meter-bank gather index in topology order: whole-system state
        # scans (busy counts, power sums) read columns instead of
        # walking processor objects.
        self._meter_rows = np.array(
            [p.meter._row for p in self._processors], dtype=np.intp
        )

    def __iter__(self):
        return iter(self.sites)

    def __len__(self) -> int:
        return len(self.sites)

    def site(self, site_id: str) -> ResourceSite:
        return self._by_id[site_id]

    @property
    def nodes(self) -> list[ComputeNode]:
        """All nodes across all sites (shared list — do not mutate)."""
        return self._nodes

    @property
    def processors(self) -> list[Processor]:
        """All processors in topology order (shared list — do not mutate)."""
        return self._processors

    @property
    def num_processors(self) -> int:
        return self._num_processors

    @property
    def slowest_speed_mips(self) -> float:
        """Speed of the slowest processor — the reference for ``ACT``."""
        return self._slowest_speed_mips

    def energy(self, now: Optional[float] = None) -> SystemEnergy:
        """System energy aggregate ``ECS`` as of *now* (default: env.now)."""
        at = self.env.now if now is None else now
        return system_energy(n.energy(at) for n in self.nodes)

    def busy_processors(self) -> int:
        """Number of processors currently executing a task."""
        from ..energy.meter import BANK

        return BANK.busy_count(self._meter_rows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<System sites={len(self.sites)} nodes={len(self.nodes)} "
            f"procs={self.num_processors}>"
        )


def build_system(
    env: Environment, spec: PlatformSpec, streams: RandomStreams
) -> System:
    """Realize *spec* into a concrete :class:`System` topology."""
    topo_rng = streams["platform.topology"]
    speed_rng = streams["platform.speeds"]

    # Sample topology sizes first so speed draws are independent of them.
    nodes_per_site = [
        int(topo_rng.integers(spec.nodes_per_site[0], spec.nodes_per_site[1] + 1))
        for _ in range(spec.num_sites)
    ]
    procs_per_node = [
        [
            int(topo_rng.integers(spec.procs_per_node[0], spec.procs_per_node[1] + 1))
            for _ in range(count)
        ]
        for count in nodes_per_site
    ]
    total_procs = sum(sum(counts) for counts in procs_per_node)

    if spec.heterogeneity_cv is not None:
        speeds = speeds_with_cv(
            total_procs, spec.heterogeneity_cv, speed_rng, spec.mean_speed_mips
        )
    else:
        speeds = speed_rng.uniform(*spec.speed_range_mips, size=total_procs)

    sites: list[ResourceSite] = []
    speed_iter = iter(np.asarray(speeds, dtype=float))
    for s_idx in range(spec.num_sites):
        site_id = f"site{s_idx}"
        nodes: list[ComputeNode] = []
        for n_idx in range(nodes_per_site[s_idx]):
            node_id = f"{site_id}.node{n_idx}"
            processors: list[Processor] = []
            for p_idx in range(procs_per_node[s_idx][n_idx]):
                speed = float(next(speed_iter))
                if spec.power_model == "constant":
                    profile = constant_power_profile()
                else:
                    profile = proportional_power_profile(
                        speed, speed_range_mips=spec.speed_range_mips
                    )
                processors.append(
                    Processor(f"{node_id}.p{p_idx}", speed, profile)
                )
            nodes.append(
                ComputeNode(
                    env,
                    node_id,
                    site_id,
                    processors,
                    queue_slots=spec.queue_slots,
                    split_enabled=spec.split_enabled,
                    sleep_policy=spec.sleep_policy,
                )
            )
        sites.append(ResourceSite(site_id, nodes))
    return System(env, sites)
