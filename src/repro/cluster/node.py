"""Compute node: bounded group queue, split-capable executor, sleep states.

Execution model (paper §III.B, §IV.D.2):

- The node queue holds :class:`~repro.cluster.taskgroup.TaskGroup` objects;
  each group occupies one slot (queue length ``qc`` bounds admission).
- A *feeder* process pops the head group and releases its tasks in EDF
  order to the node's processors through a capacity-1 ready buffer.
- **Split enabled** (paper's split process): as soon as the head group's
  tasks have been drawn, the next group's tasks become available — idle
  processors "steal" tasks from the next waiting group instead of burning
  idle power.
- **Split disabled** (gang mode, used for ablation): the next group is
  held back until every task of the current group has *completed*.
- Processors idle longer than ``idle_timeout`` power-gate into a sleep
  state (``p_sleep``) and pay ``wake_latency`` when work arrives
  (substitution A7 in DESIGN.md; disable with ``allow_sleep=False`` for
  the literal Eq. 5 platform).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..energy.accounting import NodeEnergy, node_energy
from ..energy.meter import ProcState
from ..sim.core import Environment
from ..sim.events import Event
from ..sim.exceptions import Interrupt
from ..sim.process import Process
from ..sim.resources import Store
from ..workload.task import Task
from .processor import Processor
from .taskgroup import TaskGroup

__all__ = ["ComputeNode", "NodeState", "SleepPolicy"]

#: Default number of group slots in a node queue.  The paper only states
#: the queue "varying in size (length) exists to limit the number of tasks
#: to be scheduled" (§III.B); 4 slots keeps nodes responsive while forcing
#: schedulers to respect back-pressure.
DEFAULT_QUEUE_SLOTS = 4


@dataclass(frozen=True)
class SleepPolicy:
    """Processor power-gating parameters (substitution A7)."""

    allow_sleep: bool = True
    idle_timeout: float = 25.0
    wake_latency: float = 2.0

    def __post_init__(self) -> None:
        if self.idle_timeout < 0:
            raise ValueError("idle_timeout must be non-negative")
        if self.wake_latency < 0:
            raise ValueError("wake_latency must be non-negative")

    def to_dict(self) -> dict:
        """JSON-safe representation (inverse of :meth:`from_dict`)."""
        return {
            "allow_sleep": self.allow_sleep,
            "idle_timeout": self.idle_timeout,
            "wake_latency": self.wake_latency,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SleepPolicy":
        """Rebuild a policy from :meth:`to_dict` output."""
        return cls(
            allow_sleep=bool(data["allow_sleep"]),
            idle_timeout=float(data["idle_timeout"]),
            wake_latency=float(data["wake_latency"]),
        )


@dataclass(frozen=True)
class NodeState:
    """The observable node state ``Sc(t) = (Load, q⁻, {PP1..m})`` (§IV.B)."""

    node_id: str
    #: Total processing weight queued on the node (Load).
    load: float
    #: Available queue slots (q⁻).
    free_slots: int
    #: Instantaneous per-processor power draw ({PP1..m}).
    processor_power_w: tuple[float, ...]
    #: Node processing capacity ``PCc`` (Eq. 2) — static per node.
    processing_capacity: float

    @property
    def total_power_w(self) -> float:
        return sum(self.processor_power_w)


class ComputeNode:
    """A multi-processor compute node with a bounded task-group queue."""

    def __init__(
        self,
        env: Environment,
        node_id: str,
        site_id: str,
        processors: Sequence[Processor],
        queue_slots: int = DEFAULT_QUEUE_SLOTS,
        split_enabled: bool = True,
        sleep_policy: Optional[SleepPolicy] = None,
    ) -> None:
        if not processors:
            raise ValueError(f"node {node_id}: needs at least one processor")
        if queue_slots <= 0:
            raise ValueError(f"node {node_id}: queue_slots must be positive")
        self.env = env
        self.node_id = node_id
        self.site_id = site_id
        self.processors = list(processors)
        self.queue_slots = queue_slots
        self.split_enabled = split_enabled
        self.sleep_policy = sleep_policy or SleepPolicy()

        #: Bounded queue of task groups (one slot per group).
        self.queue: Store = Store(env, capacity=queue_slots)
        #: Rendezvous buffer between the feeder and processor workers.
        self._ready: Store = Store(env, capacity=1)
        #: Triggered (and replaced) whenever the sleep policy changes so
        #: idle workers re-evaluate their power state.
        self._policy_event: Event = Event(env)
        #: Groups admitted but not fully completed, newest last.
        self._active_groups: list[TaskGroup] = []
        self.groups_completed = 0
        self.tasks_completed = 0

        self._task_callbacks: list[Callable[[Task, "ComputeNode"], None]] = []
        self._group_callbacks: list[Callable[[TaskGroup, "ComputeNode"], None]] = []
        self._slot_callbacks: list[Callable[["ComputeNode"], None]] = []
        self._orphan_callbacks: list[
            Callable[[list[Task], "ComputeNode"], None]
        ] = []

        #: True while the node is crashed (failure injection).
        self.failed = False
        self.failures = 0
        self._repair_event: Event = Event(env)

        # Static aggregates, frozen at construction.  Node membership is
        # fixed for the lifetime of the simulation (failures crash and
        # repair a node but never alter its processor set), so Eq. 2's
        # ``PCc`` really is "static per node" as the NodeState docstring
        # promises — freeze it here instead of recomputing per decision.
        self._total_speed_mips = sum(p.speed_mips for p in self.processors)
        self._processing_capacity = self._total_speed_mips / queue_slots

        # Dirty-flag caches for the per-decision aggregates.  The cached
        # values are recomputed with the exact same expressions as the
        # original full scans, so cached and uncached runs are
        # bit-identical; the flags are raised at every mutation point
        # (admission, completion, failure, power transitions).
        self._work_dirty = True
        self._load_cache = 0.0
        self._pending_tasks_cache = 0
        self._pending_size_cache = 0.0
        self._power_dirty = True
        self._power_cache: tuple[float, ...] = ()
        self._sleeping_cache = 0
        self._state_cache: Optional[NodeState] = None
        for proc in self.processors:
            proc.on_power_change = self._mark_power_dirty

        self._feeder_proc: Process = env.process(self._feeder())
        self._worker_procs: list[Process] = [
            env.process(self._worker(proc)) for proc in self.processors
        ]

    # -- static properties -------------------------------------------------
    @property
    def num_processors(self) -> int:
        return len(self.processors)

    @property
    def total_speed_mips(self) -> float:
        """Σ_j spj — fixed at construction (processor set is static)."""
        return self._total_speed_mips

    @property
    def processing_capacity(self) -> float:
        """``PCc = (1/qc) Σ_j spj`` (Eq. 2) — static per node.

        Both terms are construction-time constants: the processor set
        never changes and ``qc`` is immutable, so this matches the
        "static per node" contract documented on :class:`NodeState`.
        """
        return self._processing_capacity

    @property
    def max_group_size(self) -> int:
        """Paper §IV.D.1: ``opnum`` "must not exceed the maximum number of
        processors in a node"."""
        return self.num_processors

    # -- observable state ---------------------------------------------------
    @property
    def queued_groups(self) -> int:
        """Groups waiting in the queue (excludes the dispatching head)."""
        return len(self.queue.items)

    @property
    def free_slots(self) -> int:
        """``q⁻`` — available queue spaces."""
        return self.queue_slots - len(self.queue.items)

    @property
    def available(self) -> bool:
        """True when the node is online and has a free queue slot."""
        return not self.failed and self.free_slots > 0

    def _refresh_work_caches(self) -> None:
        """Recompute the admitted-work aggregates from scratch.

        Full rescans with the original expressions — not incremental
        float updates — so cached results are bit-identical to the
        uncached ones regardless of admission/completion order.
        """
        self._load_cache = sum(g.pw for g in self._active_groups)
        self._pending_tasks_cache = sum(
            g.remaining for g in self._active_groups
        )
        self._pending_size_cache = sum(
            t.size_mi
            for g in self._active_groups
            for t in g.tasks
            if not t.completed
        )
        self._work_dirty = False

    def _refresh_power_caches(self) -> None:
        """Recompute the per-processor power snapshot and sleep count."""
        self._power_cache = tuple(
            p.current_power_w for p in self.processors
        )
        self._sleeping_cache = sum(
            1 for p in self.processors if p.state is ProcState.SLEEP
        )
        self._power_dirty = False

    def _mark_power_dirty(self) -> None:
        """Invalidate power-derived caches (meter or DVFS transition)."""
        self._power_dirty = True

    @property
    def load(self) -> float:
        """Total processing weight of not-yet-completed admitted groups."""
        if self._work_dirty:
            self._refresh_work_caches()
        return self._load_cache

    @property
    def pending_tasks(self) -> int:
        """Tasks admitted to this node and not yet completed."""
        if self._work_dirty:
            self._refresh_work_caches()
        return self._pending_tasks_cache

    @property
    def pending_task_list(self) -> list[Task]:
        """Tasks admitted to this node and not yet completed."""
        return [
            t for g in self._active_groups for t in g.tasks if not t.completed
        ]

    @property
    def pending_size_mi(self) -> float:
        """Total MI of tasks admitted to this node and not yet completed."""
        if self._work_dirty:
            self._refresh_work_caches()
        return self._pending_size_cache

    @property
    def sleeping_processors(self) -> int:
        """Processors currently power-gated (cached; see §IV placement)."""
        if self._power_dirty:
            self._refresh_power_caches()
        return self._sleeping_cache

    def state(self) -> NodeState:
        """Snapshot ``Sc(t)`` for the site agent (§IV.B).

        The snapshot is cached: with many scheduling passes per
        completion, most observations see an unchanged node, so the
        previous (frozen, hence safely shared) ``NodeState`` is
        returned instead of rebuilding one per decision.
        """
        load = self.load
        free_slots = self.queue_slots - len(self.queue.items)
        if self._power_dirty:
            self._refresh_power_caches()
        cached = self._state_cache
        if (
            cached is not None
            and cached.load == load
            and cached.free_slots == free_slots
            and cached.processor_power_w is self._power_cache
        ):
            return cached
        state = NodeState(
            node_id=self.node_id,
            load=load,
            free_slots=free_slots,
            processor_power_w=self._power_cache,
            processing_capacity=self._processing_capacity,
        )
        self._state_cache = state
        return state

    # -- callbacks ------------------------------------------------------------
    def on_task_complete(self, cb: Callable[[Task, "ComputeNode"], None]) -> None:
        self._task_callbacks.append(cb)

    def on_group_complete(self, cb: Callable[[TaskGroup, "ComputeNode"], None]) -> None:
        self._group_callbacks.append(cb)

    def on_slot_freed(self, cb: Callable[["ComputeNode"], None]) -> None:
        self._slot_callbacks.append(cb)

    # -- admission --------------------------------------------------------------
    def submit(self, group: TaskGroup) -> Event:
        """Enqueue *group*; returns the (possibly blocking) put event.

        Schedulers should check :attr:`free_slots` first — a put against a
        full queue blocks until a slot frees, which stalls the submitting
        process.
        """
        group.node_id = self.node_id
        group.assigned_at = self.env.now
        group.completion = Event(self.env)
        group.on_complete(self._group_done)
        self._active_groups.append(group)
        self._work_dirty = True
        return self.queue.put(group)

    def try_submit(self, group: TaskGroup) -> bool:
        """Non-blocking :meth:`submit`; False when full or failed."""
        if self.failed or self.free_slots <= 0:
            return False
        self.submit(group)
        return True

    # -- executor processes -------------------------------------------------
    def _feeder(self):
        """Pop head groups and release their tasks to the workers.

        Interrupted on node failure: pending store requests are
        withdrawn and the loop parks until repair.
        """
        while True:
            get_req = None
            put_req = None
            try:
                get_req = self.queue.get()
                group: TaskGroup = yield get_req
                group.dispatched_at = self.env.now
                self._notify_slot_freed()
                for task in group.edf_order():
                    # Capacity-1 buffer: each put blocks until workers
                    # have drawn the previous task, preserving global
                    # EDF-FIFO availability order across groups.
                    put_req = self._ready.put((task, group))
                    yield put_req
                    put_req = None
                if not self.split_enabled and group.completion is not None:
                    # Gang mode: hold the next group until it finishes.
                    if not group.completed and not group.cancelled:
                        yield group.completion
            except Interrupt:
                if get_req is not None and not get_req.triggered:
                    get_req.cancel()
                if put_req is not None and not put_req.triggered:
                    put_req.cancel()
                yield self._repair_event

    def set_sleep_policy(self, policy: SleepPolicy) -> None:
        """Swap the node's power-gating policy at runtime.

        Schedulers that manage power explicitly (Online RL's powercap,
        Q+ learning's go_sleep action) reconfigure nodes through this;
        idle workers re-evaluate their power state immediately.
        """
        self.sleep_policy = policy
        old, self._policy_event = self._policy_event, Event(self.env)
        if not old.triggered:
            old.succeed()

    def _worker(self, proc: Processor):
        """One processor's execution loop with optional power gating.

        Interrupted on node failure: any in-flight task has already been
        orphaned and reset by :meth:`fail`; the processor powers off and
        parks until repair.
        """
        env = self.env
        get_ev = self._ready.get()
        while True:
            try:
                policy = self.sleep_policy
                policy_changed = self._policy_event

                if proc.state is ProcState.SLEEP:
                    # Power-gated: work arrival wakes us; so does a
                    # policy switch to always-awake (e.g. Online RL's
                    # powercap re-admitting this node).
                    yield get_ev | policy_changed
                    if not get_ev.triggered:
                        if not self.sleep_policy.allow_sleep:
                            proc.meter.set_state(ProcState.IDLE, env.now)
                            self._power_dirty = True
                            yield env.timeout(policy.wake_latency)
                        continue
                    item = get_ev.value
                    proc.meter.set_state(ProcState.IDLE, env.now)
                    self._power_dirty = True
                    yield env.timeout(policy.wake_latency)
                elif policy.allow_sleep:
                    timeout = env.timeout(policy.idle_timeout)
                    yield get_ev | timeout | policy_changed
                    if not get_ev.triggered:
                        if not timeout.triggered:
                            continue  # policy changed: re-evaluate
                        # Idle too long: cancel our place in line,
                        # power-gate, and re-queue at the back so awake
                        # processors are preferred for incoming work.
                        get_ev.cancel()
                        proc.meter.set_state(ProcState.SLEEP, env.now)
                        self._power_dirty = True
                        get_ev = self._ready.get()
                        continue
                    item = get_ev.value
                else:
                    yield get_ev | policy_changed
                    if not get_ev.triggered:
                        continue  # policy changed: re-evaluate
                    item = get_ev.value

                task, group = item
                # Busy power and execution time are frozen at start at
                # the processor's current DVFS scale.
                proc.meter.set_state(
                    ProcState.BUSY, env.now, power_w=proc.busy_power_w
                )
                self._power_dirty = True
                task.mark_started(env.now, proc.pid, self.site_id)
                yield env.timeout(proc.execution_time(task.size_mi))
                task.mark_finished(env.now)
                proc.meter.set_state(ProcState.IDLE, env.now)
                self._power_dirty = True
                self._work_dirty = True
                proc.tasks_completed += 1
                self.tasks_completed += 1
                for cb in self._task_callbacks:
                    cb(task, self)
                group.task_done()
                get_ev = self._ready.get()
            except Interrupt:
                # Node failure.  Any in-flight task was already orphaned
                # and reset by fail(); do not touch it here.
                if not get_ev.triggered:
                    get_ev.cancel()
                proc.meter.set_state(ProcState.SLEEP, env.now)
                self._power_dirty = True
                yield self._repair_event
                proc.meter.set_state(ProcState.IDLE, env.now)
                self._power_dirty = True
                get_ev = self._ready.get()

    # -- failure injection ---------------------------------------------------
    def on_tasks_orphaned(
        self, cb: Callable[[list[Task], "ComputeNode"], None]
    ) -> None:
        """Register a callback receiving tasks abandoned by a failure."""
        self._orphan_callbacks.append(cb)

    def fail(self) -> None:
        """Crash the node (crash-stop with task resubmission).

        Every incomplete task admitted to the node — queued, ready, or
        mid-execution — is abandoned, reset, and handed to the orphan
        callbacks (schedulers resubmit them elsewhere); active groups
        are cancelled; processors power off; the executor parks until
        :meth:`repair`.
        """
        if self.failed:
            return
        self.failed = True
        self.failures += 1

        # Sweep every incomplete task out of the node's bookkeeping.
        orphans: list[Task] = []
        for group in self._active_groups:
            group.cancel()
            for task in group.tasks:
                if not task.completed:
                    if task.start_time is not None:
                        task.reset_execution()
                    orphans.append(task)
        self._active_groups.clear()
        self._work_dirty = True
        self.queue.items.clear()
        self._ready.items.clear()

        # Interrupt the executor; handlers park processes until repair.
        active = self.env.active_process
        for process in [self._feeder_proc, *self._worker_procs]:
            if process.is_alive and process is not active:
                process.interrupt(cause="node-failure")

        for cb in self._orphan_callbacks:
            cb(list(orphans), self)

    def repair(self) -> None:
        """Bring a failed node back online (empty queue, idle procs)."""
        if not self.failed:
            return
        self.failed = False
        old, self._repair_event = self._repair_event, Event(self.env)
        if not old.triggered:
            old.succeed()
        self._notify_slot_freed()

    # -- completion plumbing ---------------------------------------------------
    def _group_done(self, group: TaskGroup) -> None:
        self.groups_completed += 1
        if group in self._active_groups:
            self._active_groups.remove(group)
        self._work_dirty = True
        for cb in self._group_callbacks:
            cb(group, self)

    def _notify_slot_freed(self) -> None:
        for cb in self._slot_callbacks:
            cb(self)

    # -- energy -------------------------------------------------------------
    def energy(self, now: Optional[float] = None) -> NodeEnergy:
        """Aggregate node energy ``Ec`` (Eq. 6) as of *now* (default: now)."""
        at = self.env.now if now is None else now
        return node_energy(
            self.node_id, [p.meter.snapshot(at) for p in self.processors]
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ComputeNode {self.node_id} m={self.num_processors} "
            f"PCc={self.processing_capacity:.0f} q={self.queued_groups}/"
            f"{self.queue_slots}>"
        )
