"""Job identity and record views for the parallel engine.

A *job* is one grid point: an :class:`~repro.experiments.config.ExperimentConfig`
plus a deterministic id derived from the config's serialized form.  The
id — not the grid position — is the engine's unit of exactly-once
accounting: the checkpoint journal keys on it, resume matching keys on
it, and it is stable across processes, Python versions, and grid
reorderings.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Sequence

from ..experiments.config import ExperimentConfig
from .errors import DuplicateJobError

__all__ = ["Job", "RecordView", "build_jobs", "job_id"]

#: Hex digits kept from the config digest — 64 bits, far beyond any
#: realistic grid size while keeping journal lines readable.
_ID_LEN = 16


def job_id(config: ExperimentConfig) -> str:
    """Deterministic id for one config: SHA-256 over its canonical JSON."""
    canonical = json.dumps(
        config.to_dict(), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:_ID_LEN]


@dataclass(frozen=True)
class Job:
    """One schedulable grid point."""

    job_id: str
    index: int
    config: ExperimentConfig


def build_jobs(configs: Sequence[ExperimentConfig]) -> list[Job]:
    """Wrap *configs* into jobs, rejecting duplicate grid points."""
    jobs: list[Job] = []
    seen: dict[str, int] = {}
    for index, config in enumerate(configs):
        jid = job_id(config)
        if jid in seen:
            raise DuplicateJobError(
                f"configs {seen[jid]} and {index} are identical "
                f"(job id {jid}); exactly-once execution needs a "
                "duplicate-free grid"
            )
        seen[jid] = index
        jobs.append(Job(job_id=jid, index=index, config=config))
    return jobs


class RecordView:
    """Attribute access over a flat campaign record dict.

    The figure and sweep aggregators read ``m.avert`` / ``m.ecs`` /
    ``m.success_rate`` / ``m.utilization`` off
    :class:`~repro.metrics.collector.RunMetrics` objects.  Parallel runs
    move JSON records between processes instead of live metric objects;
    wrapping a record in a ``RecordView`` lets the same aggregation code
    consume either.
    """

    __slots__ = ("record",)

    def __init__(self, record: dict) -> None:
        self.record = record

    def __getattr__(self, name: str):
        try:
            return self.record[name]
        except KeyError:
            raise AttributeError(
                f"record has no field {name!r} "
                f"(available: {', '.join(sorted(self.record))})"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<RecordView {self.record.get('scheduler')!r} "
            f"seed={self.record.get('seed')}>"
        )
