"""Merge per-worker observability artifacts into one campaign view.

Each worker process records its own telemetry (a JSONL event trace and a
metrics snapshot per job — see :mod:`repro.obs`); this module folds them
back into the single-trace / single-registry view a serial run would
have produced:

- **Traces** interleave by simulated time (ties keep per-file order) and
  are re-sequenced, so the merged file is a valid ``save_jsonl`` trace.
- **Metrics** merge by instrument type: counters sum; gauges keep the
  high-water view (``value`` and ``high`` both become the max across
  workers — "last set" has no meaning across concurrent processes);
  histograms with identical bounds add bucket counts, counts, and sums,
  combine min/max, and re-estimate quantiles from the folded buckets.
- **Series banks** (the flight recorder's ``SeriesBank.as_dict`` files)
  merge same-name series point-by-point in time order, so a campaign
  aggregates into the one bank a single dashboard renders.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from ..obs import (
    SeriesBank,
    TraceEvent,
    estimate_bucket_quantiles,
    load_jsonl,
    save_jsonl,
)

__all__ = [
    "merge_trace_files",
    "merge_metrics_files",
    "merge_metrics_dicts",
    "merge_series_dicts",
    "merge_series_files",
]


def merge_trace_files(
    paths: Sequence[Union[str, Path]],
    out: Optional[Union[str, Path]] = None,
) -> list[TraceEvent]:
    """Interleave the events of several JSONL traces by simulated time.

    Returns the merged, re-sequenced event list; with *out* given, also
    writes it back as one JSONL trace.
    """
    events: list[TraceEvent] = []
    for path in paths:
        events.extend(load_jsonl(path))
    # Python's sort is stable: same-t events keep file order, and events
    # within one file are already in emission order.
    events.sort(key=lambda ev: ev.t)
    merged = [
        TraceEvent(ev.category, ev.name, ev.t, ev.fields, seq)
        for seq, ev in enumerate(events)
    ]
    if out is not None:
        save_jsonl(merged, out)
    return merged


def merge_metrics_dicts(snapshots: Iterable[dict]) -> dict:
    """Fold several ``MetricsRegistry.as_dict()`` snapshots into one."""
    merged: dict = {}
    for snapshot in snapshots:
        for name, inst in snapshot.items():
            if name not in merged:
                merged[name] = json.loads(json.dumps(inst))  # deep copy
                continue
            _fold(name, merged[name], inst)
    return merged


def _fold(name: str, acc: dict, inst: dict) -> None:
    if acc["type"] != inst["type"]:
        raise ValueError(
            f"metric {name!r} has conflicting types across workers: "
            f"{acc['type']} vs {inst['type']}"
        )
    kind = acc["type"]
    if kind == "counter":
        acc["value"] += inst["value"]
    elif kind == "gauge":
        acc["value"] = max(acc["value"], inst["value"])
        acc["high"] = max(acc["high"], inst["high"])
    elif kind == "histogram":
        if list(acc["buckets"]) != list(inst["buckets"]):
            raise ValueError(
                f"histogram {name!r} has conflicting buckets across workers"
            )
        for bound, count in inst["buckets"].items():
            acc["buckets"][bound] += count
        acc["count"] += inst["count"]
        acc["sum"] += inst["sum"]
        for key, pick in (("min", min), ("max", max)):
            values = [v for v in (acc[key], inst[key]) if v is not None]
            acc[key] = pick(values) if values else None
        acc["mean"] = acc["sum"] / acc["count"] if acc["count"] else 0.0
        # Per-worker quantiles don't compose; re-estimate from the
        # folded buckets so the merged snapshot matches what a serial
        # run over the combined observations would report.
        acc["quantiles"] = estimate_bucket_quantiles(
            acc["buckets"], acc["count"], lo=acc["min"], hi=acc["max"]
        )
    else:
        raise ValueError(f"metric {name!r} has unknown type {kind!r}")


def merge_series_dicts(snapshots: Iterable[dict]) -> SeriesBank:
    """Fold several ``SeriesBank.as_dict()`` snapshots into one bank.

    Same-name series interleave their points by sample time (stable —
    earlier snapshots win ties), matching what one recorder sampling all
    workers' runs back-to-back would have captured.
    """
    merged = SeriesBank()
    for snapshot in snapshots:
        merged.merge_from(SeriesBank.from_dict(snapshot))
    return merged


def merge_series_files(
    paths: Sequence[Union[str, Path]],
    out: Optional[Union[str, Path]] = None,
) -> SeriesBank:
    """Merge several series-bank JSON files; optionally write the result."""
    merged = merge_series_dicts(
        json.loads(Path(p).read_text(encoding="utf-8")) for p in paths
    )
    if out is not None:
        Path(out).write_text(
            json.dumps(merged.as_dict()), encoding="utf-8"
        )
    return merged


def merge_metrics_files(
    paths: Sequence[Union[str, Path]],
    out: Optional[Union[str, Path]] = None,
) -> dict:
    """Merge several metrics JSON files; optionally write the result."""
    merged = merge_metrics_dicts(
        json.loads(Path(p).read_text(encoding="utf-8")) for p in paths
    )
    if out is not None:
        Path(out).write_text(json.dumps(merged, indent=1), encoding="utf-8")
    return merged
