"""Exception taxonomy of the parallel execution engine.

Everything raised by :mod:`repro.parallel` derives from
:class:`ParallelError`, so callers can catch one type.  The notable
non-error control-flow exception is :class:`CampaignInterrupted` — the
engine raises it when a run is cut short (via the ``stop_after`` test
hook or ``KeyboardInterrupt``) *after* flushing the checkpoint journal,
so a subsequent ``resume=True`` run picks up exactly where it stopped.
"""

from __future__ import annotations

__all__ = [
    "ParallelError",
    "JournalError",
    "DuplicateJobError",
    "JobFailedError",
    "RetryBudgetExceeded",
    "CampaignInterrupted",
]


class ParallelError(RuntimeError):
    """Base class for every parallel-engine failure."""


class JournalError(ParallelError):
    """A checkpoint journal is unreadable or inconsistent with the grid."""


class DuplicateJobError(ParallelError):
    """Two grid configs hash to the same job id (identical configs).

    Exactly-once semantics key on the deterministic job id; a grid that
    contains the same config twice is almost always a caller bug, so the
    engine refuses it instead of silently running the config once.
    """


class JobFailedError(ParallelError):
    """A job raised inside its worker process.

    Attributes
    ----------
    job_id:
        Deterministic id of the failing job.
    attempt:
        1-based attempt number that produced this failure.
    """

    def __init__(self, job_id: str, attempt: int, message: str) -> None:
        super().__init__(f"job {job_id} failed on attempt {attempt}: {message}")
        self.job_id = job_id
        self.attempt = attempt


class RetryBudgetExceeded(JobFailedError):
    """A job kept failing after every allowed retry."""


class CampaignInterrupted(ParallelError):
    """The run stopped early with its journal flushed and consistent.

    Attributes
    ----------
    completed:
        Jobs that finished (and were journaled) during this invocation.
    remaining:
        Jobs that were still pending or in flight when the run stopped.
    """

    def __init__(self, completed: int, remaining: int) -> None:
        super().__init__(
            f"campaign interrupted: {completed} jobs done, "
            f"{remaining} remaining (resume with resume=True)"
        )
        self.completed = completed
        self.remaining = remaining
