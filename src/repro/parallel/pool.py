"""Process-pool campaign execution with checkpointing and retry.

:func:`run_parallel` fans a list of experiment configs out over a
``concurrent.futures.ProcessPoolExecutor``:

- every config gets a deterministic job id (:func:`repro.parallel.jobs.job_id`);
- completions are journaled (JSONL, fsynced) as they land, so an
  interrupted campaign resumed with ``resume=True`` re-executes only
  unfinished jobs — exactly-once completion keyed on job id;
- a job whose attempt raises, or whose worker process dies, is retried
  with exponential backoff up to ``max_retries`` times;
- with ``capture_obs=True`` each worker records per-job
  :mod:`repro.obs` telemetry files, merged into one trace/metrics view
  when the campaign completes.

Workers rebuild their config from its dict form
(``ExperimentConfig.from_dict``) and produce records through the same
:func:`~repro.experiments.persistence.run_record` builder as the serial
campaign path, so at equal seeds a parallel run yields the identical
record set (modulo the host-dependent ``wall_seconds`` field).
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, wait
from concurrent.futures.process import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping, Optional, Sequence, Tuple, Union

from ..experiments.config import ExperimentConfig
from .errors import CampaignInterrupted, JournalError, RetryBudgetExceeded
from .jobs import Job, build_jobs
from .journal import JOURNAL_FILENAME, CheckpointJournal, JournalState
from .merge import merge_metrics_files, merge_series_files, merge_trace_files

__all__ = ["ParallelResult", "run_parallel"]


@dataclass(frozen=True)
class ParallelResult:
    """Outcome of one :func:`run_parallel` invocation."""

    #: Per-run campaign records, in the order of the input configs.
    records: list
    wall_seconds: float
    #: Job ids executed by this invocation.
    executed: Tuple[str, ...]
    #: Job ids satisfied from the journal (resume skips).
    skipped: Tuple[str, ...]
    #: Attempts beyond the first across all jobs.
    retries: int
    journal_path: Optional[Path] = None
    #: Merged obs artifacts (``capture_obs=True`` runs only).
    trace_path: Optional[Path] = None
    metrics_path: Optional[Path] = None
    #: Merged flight-recorder bank (``sample_every`` runs only).
    series_path: Optional[Path] = None


def _execute_job(payload: dict) -> dict:
    """Worker entry point: run one config, return its campaign record.

    Top-level so it pickles under every multiprocessing start method.
    Imports of the simulation stack happen lazily to keep spawn-mode
    worker startup from paying for them before they are needed.
    """
    fault = payload.get("fault")
    attempt = payload["attempt"]
    if fault is not None:
        kind, failing_attempts = fault
        if attempt <= failing_attempts:
            if kind == "exit":  # simulate a dying worker process
                os._exit(13)
            raise RuntimeError(f"injected fault on attempt {attempt}")

    from ..experiments.persistence import run_record
    from ..experiments.runner import run_experiment
    from ..obs import (
        InMemoryRecorder,
        MetricsRegistry,
        SeriesBank,
        Telemetry,
        save_jsonl,
    )

    config = ExperimentConfig.from_dict(payload["config"])
    obs_dir = payload.get("obs_dir")
    capture = payload.get("capture_obs", False)
    sample_every = payload.get("sample_every")
    telemetry = (
        Telemetry(
            trace=InMemoryRecorder() if capture else None,
            metrics=MetricsRegistry() if capture else None,
            series=SeriesBank() if sample_every is not None else None,
            sample_every=sample_every,
        )
        if obs_dir is not None
        else None
    )

    started = time.perf_counter()
    run = run_experiment(config, telemetry=telemetry)
    wall = time.perf_counter() - started
    record = run_record(config, run.metrics, wall)

    if obs_dir is not None:
        job_id = payload["job_id"]
        out = Path(obs_dir)
        out.mkdir(parents=True, exist_ok=True)
        if capture:
            save_jsonl(
                telemetry.trace.events(), out / f"trace-{job_id}.jsonl"
            )
            (out / f"metrics-{job_id}.json").write_text(
                json.dumps(telemetry.metrics.as_dict()), encoding="utf-8"
            )
        if telemetry.sampling:
            (out / f"series-{job_id}.json").write_text(
                json.dumps(telemetry.series.as_dict()), encoding="utf-8"
            )
    return {"job_id": payload["job_id"], "record": record}


def run_parallel(
    configs: Sequence[ExperimentConfig],
    *,
    jobs: int = 2,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
    campaign_name: str = "campaign",
    max_retries: int = 2,
    backoff_base: float = 0.25,
    backoff_cap: float = 4.0,
    capture_obs: bool = False,
    sample_every: Optional[float] = None,
    stop_after: Optional[int] = None,
    on_record: Optional[Callable[[dict], None]] = None,
    mp_context=None,
    _fault_spec: Optional[Mapping[int, tuple]] = None,
) -> ParallelResult:
    """Execute *configs* over a pool of *jobs* worker processes.

    Parameters
    ----------
    configs:
        The campaign grid; duplicates are rejected (exactly-once
        execution keys on the deterministic per-config job id).
    jobs:
        Worker process count (≥ 1).
    checkpoint_dir:
        Directory for the checkpoint journal (``journal.jsonl``) and,
        with ``capture_obs``, per-worker obs files plus their merged
        views.  ``None`` runs without any checkpointing.
    resume:
        Skip every job the directory's journal records as done and
        append to that journal.  A missing journal starts fresh.
    max_retries:
        Extra attempts allowed per job after its first (worker death
        counts against every job that was in flight, since the engine
        cannot attribute the crash).
    backoff_base / backoff_cap:
        Retry delay: ``min(cap, base * 2**(attempt-1))`` seconds.
    capture_obs:
        Record per-job telemetry in the workers and merge it at the end
        (requires ``checkpoint_dir``).
    sample_every:
        Arm each worker's flight recorder on this sampling cadence
        (simulated time); the per-job series banks merge into one
        ``series.json`` at the end.  Requires ``checkpoint_dir`` (the
        per-job banks land next to the journal) but not ``capture_obs``.
    stop_after:
        Test/CI hook — raise :class:`CampaignInterrupted` (journal
        flushed) once this many jobs complete in this invocation.
    on_record:
        Callback invoked with each fresh record as it completes.
    mp_context:
        ``multiprocessing`` context; default interpreter choice.
    _fault_spec:
        Test hook: ``{config_index: ("raise"|"exit", n_attempts)}``
        makes the job fail its first ``n_attempts`` attempts.

    Raises
    ------
    CampaignInterrupted
        On ``stop_after`` or ``KeyboardInterrupt`` — the journal is
        consistent and the run can be resumed.
    RetryBudgetExceeded
        When a job fails every allowed attempt.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires a checkpoint_dir")
    if capture_obs and checkpoint_dir is None:
        raise ValueError("capture_obs=True requires a checkpoint_dir")
    if sample_every is not None and checkpoint_dir is None:
        raise ValueError("sample_every requires a checkpoint_dir")
    if sample_every is not None and sample_every <= 0:
        raise ValueError("sample_every must be positive")
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")

    job_list = build_jobs(configs)
    by_id = {job.job_id: job for job in job_list}
    fault_by_id = {
        job_list[i].job_id: tuple(spec)
        for i, spec in (_fault_spec or {}).items()
    }

    checkpoint_path = Path(checkpoint_dir) if checkpoint_dir else None
    want_obs = capture_obs or sample_every is not None
    obs_dir = checkpoint_path / "obs" if (checkpoint_path and want_obs) else None

    # --- recover prior state -------------------------------------------------
    state = JournalState()
    journal_path = checkpoint_path / JOURNAL_FILENAME if checkpoint_path else None
    if resume and journal_path is not None and journal_path.exists():
        state = CheckpointJournal.load(journal_path)
        unknown = set(state.completed) - set(by_id)
        if state.header is not None and unknown == set(state.completed) and state.completed:
            raise JournalError(
                f"{journal_path}: no journaled job matches this grid — "
                "wrong checkpoint directory?"
            )

    completed: dict = {
        jid: record for jid, record in state.completed.items() if jid in by_id
    }
    pending = [job for job in job_list if job.job_id not in completed]
    skipped = tuple(job.job_id for job in job_list if job.job_id in completed)

    journal: Optional[CheckpointJournal] = None
    if journal_path is not None:
        journal = CheckpointJournal(journal_path).open(
            fresh=not (resume and journal_path.exists())
        )
        if state.entries:
            journal.write_resume(pending=len(pending))
        else:
            journal.write_header(
                campaign_name, [j.job_id for j in job_list], len(job_list)
            )

    executed: list = []
    attempts: dict = {job.job_id: 0 for job in pending}
    retries = 0
    finished_this_run = 0
    started_wall = time.monotonic()

    def payload_for(job: Job) -> dict:
        attempts[job.job_id] += 1
        if journal is not None:
            journal.write_start(job.job_id, attempts[job.job_id])
        return {
            "job_id": job.job_id,
            "attempt": attempts[job.job_id],
            "config": job.config.to_dict(),
            "obs_dir": str(obs_dir) if obs_dir is not None else None,
            "capture_obs": capture_obs,
            "sample_every": sample_every,
            "fault": fault_by_id.get(job.job_id),
        }

    def register_failure(job: Job, message: str) -> None:
        nonlocal retries
        attempt = attempts[job.job_id]
        if journal is not None:
            journal.write_fail(job.job_id, attempt, message)
        if attempt > max_retries:
            raise RetryBudgetExceeded(job.job_id, attempt, message)
        retries += 1

    def backoff_for(job: Job) -> float:
        return min(backoff_cap, backoff_base * 2 ** (attempts[job.job_id] - 1))

    try:
        to_run = list(pending)
        while to_run:
            pool = ProcessPoolExecutor(max_workers=jobs, mp_context=mp_context)
            futures = {pool.submit(_execute_job, payload_for(j)): j for j in to_run}
            to_run = []
            try:
                while futures:
                    done_set, _ = wait(
                        list(futures), return_when=FIRST_COMPLETED
                    )
                    pool_broken = False
                    for future in done_set:
                        job = futures.pop(future)
                        try:
                            outcome = future.result()
                        except BrokenExecutor:
                            # The pool is dead; every in-flight job must
                            # be re-run on a fresh pool.  The crash is
                            # unattributable, so it counts as a failed
                            # attempt for each of them.
                            survivors = [job, *futures.values()]
                            futures.clear()
                            for lost in survivors:
                                register_failure(lost, "worker process died")
                            time.sleep(max(backoff_for(j) for j in survivors))
                            to_run.extend(survivors)
                            pool_broken = True
                            break
                        except Exception as exc:  # job-level failure
                            register_failure(job, f"{type(exc).__name__}: {exc}")
                            time.sleep(backoff_for(job))
                            futures[
                                pool.submit(_execute_job, payload_for(job))
                            ] = job
                            continue
                        record = outcome["record"]
                        completed[job.job_id] = record
                        executed.append(job.job_id)
                        finished_this_run += 1
                        if journal is not None:
                            journal.write_done(
                                job.job_id, attempts[job.job_id], record
                            )
                        if on_record is not None:
                            on_record(record)
                        if (
                            stop_after is not None
                            and finished_this_run >= stop_after
                            and (futures or to_run)
                        ):
                            raise CampaignInterrupted(
                                completed=finished_this_run,
                                remaining=len(futures) + len(to_run),
                            )
                    if pool_broken:
                        break
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
    except KeyboardInterrupt as exc:
        remaining = len(job_list) - len(completed)
        raise CampaignInterrupted(
            completed=finished_this_run, remaining=remaining
        ) from exc
    finally:
        if journal is not None:
            journal.close()

    records = [completed[job.job_id] for job in job_list]
    trace_path = metrics_path = series_path = None
    if obs_dir is not None:
        trace_files = sorted(obs_dir.glob("trace-*.jsonl"))
        metrics_files = sorted(obs_dir.glob("metrics-*.json"))
        series_files = sorted(obs_dir.glob("series-*.json"))
        if trace_files:
            trace_path = checkpoint_path / "trace.jsonl"
            merge_trace_files(trace_files, out=trace_path)
        if metrics_files:
            metrics_path = checkpoint_path / "metrics.json"
            merge_metrics_files(metrics_files, out=metrics_path)
        if series_files:
            series_path = checkpoint_path / "series.json"
            merge_series_files(series_files, out=series_path)

    return ParallelResult(
        records=records,
        wall_seconds=time.monotonic() - started_wall,
        executed=tuple(executed),
        skipped=skipped,
        retries=retries,
        journal_path=journal_path,
        trace_path=trace_path,
        metrics_path=metrics_path,
        series_path=series_path,
    )
