"""End-to-end engine check: interrupt a campaign, resume it, verify.

Runs a small scheduler × seed grid three ways —

1. serially (the reference record set),
2. in parallel with a forced interruption after *k* completions,
3. resumed from the interrupted journal —

and asserts the exactly-once/equality contract: the resumed invocation
executes only the unfinished jobs, every job completes exactly once
across invocations, and the final record set equals the serial one
(``wall_seconds``, the only host-dependent field, excluded).

CI runs this as ``python -m repro.parallel.selfcheck --jobs 2``; it is
equally useful locally after touching the engine.

Exit status 0 means every assertion held.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from ..experiments.campaign import grid
from ..experiments.persistence import run_record
from ..experiments.runner import run_experiment
from .errors import CampaignInterrupted
from .journal import CheckpointJournal
from .pool import run_parallel

__all__ = ["main", "comparable"]


def comparable(record: dict) -> dict:
    """A record with its host-dependent field removed."""
    return {k: v for k, v in record.items() if k != "wall_seconds"}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=2, help="worker count")
    parser.add_argument(
        "--stop-after",
        type=int,
        default=2,
        help="forced interruption point (completed jobs)",
    )
    parser.add_argument(
        "--tasks", type=int, default=40, help="tasks per simulation"
    )
    parser.add_argument(
        "--dir", default=None, help="checkpoint dir (default: temp dir)"
    )
    args = parser.parse_args(argv)

    configs = grid(["edf", "fcfs"], [args.tasks], [1, 2])
    total = len(configs)
    if not 0 < args.stop_after < total:
        parser.error(f"--stop-after must lie in (0, {total})")

    print(f"selfcheck: {total} jobs, {args.jobs} workers")
    serial = [
        comparable(run_record(cfg, run_experiment(cfg).metrics, 0.0))
        for cfg in configs
    ]
    print("serial reference computed")

    workdir = Path(args.dir) if args.dir else Path(tempfile.mkdtemp())
    checkpoint = workdir / "checkpoint"
    try:
        run_parallel(
            configs,
            jobs=args.jobs,
            checkpoint_dir=checkpoint,
            stop_after=args.stop_after,
        )
    except CampaignInterrupted as exc:
        print(f"interrupted as forced: {exc}")
    else:
        print("FAIL: campaign was not interrupted")
        return 1

    state = CheckpointJournal.load(checkpoint / "journal.jsonl")
    if len(state.completed) != args.stop_after:
        print(
            f"FAIL: journal has {len(state.completed)} completions, "
            f"expected {args.stop_after}"
        )
        return 1

    result = run_parallel(
        configs, jobs=args.jobs, checkpoint_dir=checkpoint, resume=True
    )
    failures = []
    if len(result.skipped) != args.stop_after:
        failures.append(
            f"resume skipped {len(result.skipped)} jobs, "
            f"expected {args.stop_after}"
        )
    if len(result.executed) != total - args.stop_after:
        failures.append(
            f"resume executed {len(result.executed)} jobs, "
            f"expected {total - args.stop_after}"
        )
    final = CheckpointJournal.load(checkpoint / "journal.jsonl")
    if len(final.completed) != total:
        failures.append(
            f"journal has {len(final.completed)} completions, expected {total}"
        )
    parallel = [comparable(r) for r in result.records]
    if parallel != serial:
        failures.append("resumed record set differs from the serial run")

    if failures:
        for message in failures:
            print(f"FAIL: {message}")
        return 1
    print(
        f"selfcheck ok: {len(result.skipped)} resumed-from-journal + "
        f"{len(result.executed)} re-executed = {total} records, "
        "identical to serial"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
