"""Append-only JSONL checkpoint journal for campaign runs.

One journal file records the life of a campaign as a sequence of JSON
lines, flushed and fsynced per event so a crash loses at most the line
being written:

- ``{"ev": "campaign", "version": 1, "name": ..., "total": N, "job_ids": [...]}``
  — written once when a journal is created (and a ``{"ev": "resume"}``
  marker on each subsequent resumed invocation);
- ``{"ev": "start", "job": id, "attempt": k}`` — a job was submitted to
  a worker (at-least-once visibility: a ``start`` without a matching
  ``done`` means the attempt was lost to a crash or interruption);
- ``{"ev": "done", "job": id, "attempt": k, "record": {...}}`` — the
  job finished; ``record`` is the full campaign record, so a resumed run
  never re-executes this job (exactly-once completion);
- ``{"ev": "fail", "job": id, "attempt": k, "error": "..."}`` — the
  attempt raised; the engine may retry it.

Loading tolerates a truncated *final* line (the crash case); any other
malformed line raises :class:`~repro.parallel.errors.JournalError`
because it means the file was edited or interleaved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from .errors import JournalError
from .jsonl import JsonlAppender, read_journal_entries

__all__ = ["CheckpointJournal", "JournalState", "JOURNAL_FILENAME"]

#: File name used inside a checkpoint directory.
JOURNAL_FILENAME = "journal.jsonl"

_FORMAT_VERSION = 1


@dataclass
class JournalState:
    """Everything recoverable from a journal file."""

    header: Optional[dict] = None
    #: job id → campaign record, for every journaled completion.
    completed: dict = field(default_factory=dict)
    #: job id → number of ``fail`` entries seen.
    failures: dict = field(default_factory=dict)
    #: job id → highest ``start`` attempt seen (lost attempts included).
    started: dict = field(default_factory=dict)
    #: total parsed journal lines.
    entries: int = 0

    @property
    def interrupted_jobs(self) -> set:
        """Jobs that were started but never journaled as done."""
        return set(self.started) - set(self.completed)


class CheckpointJournal:
    """Writer/loader for one campaign's checkpoint journal."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._writer = JsonlAppender(self.path, error=JournalError)

    # ------------------------------------------------------------------
    # Loading

    @classmethod
    def load(cls, path: Union[str, Path]) -> JournalState:
        """Parse *path* into a :class:`JournalState`.

        A malformed final line (torn write from a crash) is dropped;
        malformed lines elsewhere raise :class:`JournalError`.
        """
        state = JournalState()
        for lineno, entry in read_journal_entries(path, error=JournalError):
            state.entries += 1
            ev = entry.get("ev")
            if ev == "campaign":
                if entry.get("version") != _FORMAT_VERSION:
                    raise JournalError(
                        f"{path}: unsupported journal version "
                        f"{entry.get('version')!r}"
                    )
                state.header = entry
            elif ev == "start":
                jid = entry["job"]
                state.started[jid] = max(
                    state.started.get(jid, 0), int(entry.get("attempt", 1))
                )
            elif ev == "done":
                state.completed[entry["job"]] = entry["record"]
            elif ev == "fail":
                jid = entry["job"]
                state.failures[jid] = state.failures.get(jid, 0) + 1
            elif ev == "resume":
                pass
            else:
                raise JournalError(
                    f"{path}:{lineno}: unknown journal event {ev!r}"
                )
        return state

    # ------------------------------------------------------------------
    # Writing

    def open(self, fresh: bool) -> "CheckpointJournal":
        """Open for appending; ``fresh=True`` truncates any prior file."""
        self._writer.open(fresh)
        return self

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _append(self, entry: dict) -> None:
        self._writer.append(entry)

    def write_header(
        self, name: str, job_ids: Sequence[str], total: int
    ) -> None:
        self._append(
            {
                "ev": "campaign",
                "version": _FORMAT_VERSION,
                "name": name,
                "total": total,
                "job_ids": list(job_ids),
            }
        )

    def write_resume(self, pending: int) -> None:
        self._append({"ev": "resume", "pending": pending})

    def write_start(self, job_id: str, attempt: int) -> None:
        self._append({"ev": "start", "job": job_id, "attempt": attempt})

    def write_done(self, job_id: str, attempt: int, record: dict) -> None:
        self._append(
            {"ev": "done", "job": job_id, "attempt": attempt, "record": record}
        )

    def write_fail(self, job_id: str, attempt: int, error: str) -> None:
        self._append(
            {"ev": "fail", "job": job_id, "attempt": attempt, "error": error}
        )
