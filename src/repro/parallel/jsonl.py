"""Crash-safe JSONL primitives shared by every journal in the tree.

Two journals need the same durability idiom — the campaign checkpoint
journal (:mod:`repro.parallel.journal`) and the service admission log
(:mod:`repro.service.journal`): append one JSON object per line, flush
and fsync per entry so a crash loses at most the line being written,
and on load tolerate a torn *final* line while rejecting corruption
anywhere else.  This module is that idiom, extracted once:

- :class:`JsonlAppender` — the fsynced append side;
- :func:`read_journal_entries` — the tolerant replay side.

Both are format-agnostic: event vocabulary, versioning, and state
reconstruction stay with each journal.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List, Tuple, Type, Union

from .errors import JournalError

__all__ = ["JsonlAppender", "read_journal_entries"]


class JsonlAppender:
    """Append-only JSONL writer, flushed and fsynced per entry.

    The fsync is the durability contract: a journal is the crash-
    recovery source of truth, so a buffered entry is a lost entry.

    Parameters
    ----------
    path:
        The journal file (parent directories are created on
        :meth:`open`).
    error:
        Exception class raised on misuse (writing while closed), so
        each journal surfaces its own error taxonomy.
    """

    def __init__(
        self,
        path: Union[str, Path],
        error: Type[Exception] = JournalError,
    ) -> None:
        self.path = Path(path)
        self._error = error
        self._fh = None

    @property
    def is_open(self) -> bool:
        return self._fh is not None

    def open(self, fresh: bool) -> "JsonlAppender":
        """Open for appending; ``fresh=True`` truncates any prior file."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w" if fresh else "a", encoding="utf-8")
        return self

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlAppender":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def append(self, entry: dict) -> None:
        """Serialize *entry*, append it, and force it through to disk."""
        if self._fh is None:
            raise self._error("journal is not open for writing")
        self._fh.write(json.dumps(entry, separators=(",", ":")))
        self._fh.write("\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())


def read_journal_entries(
    path: Union[str, Path],
    error: Type[Exception] = JournalError,
) -> List[Tuple[int, dict]]:
    """Parse *path* into ``[(lineno, entry), ...]``.

    A malformed *final* line is dropped silently — that is the torn
    write an interrupted :meth:`JsonlAppender.append` leaves behind.  A
    malformed line anywhere else raises *error*, because it means the
    file was edited or interleaved, and replaying a half-trusted
    journal is worse than failing.
    """
    raw_lines = Path(path).read_text(encoding="utf-8").splitlines()
    lines = [(i, l) for i, l in enumerate(raw_lines) if l.strip()]
    entries: List[Tuple[int, dict]] = []
    for pos, (lineno, line) in enumerate(lines):
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            if pos == len(lines) - 1:
                break  # torn tail from an interrupted write
            raise error(
                f"{path}:{lineno + 1}: malformed journal line: {exc}"
            ) from exc
        entries.append((lineno + 1, entry))
    return entries
