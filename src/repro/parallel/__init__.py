"""Parallel campaign execution with checkpoint/resume.

A zero-dependency engine that fans a campaign's config grid out over a
process pool:

- deterministic per-config job ids (:func:`job_id`) give exactly-once
  completion semantics;
- a flushed JSONL checkpoint journal (:class:`CheckpointJournal`) lets
  an interrupted campaign resume, skipping completed jobs;
- failed attempts and dead workers are retried with exponential backoff;
- per-worker :mod:`repro.obs` telemetry files merge into one campaign
  trace/metrics view (:mod:`repro.parallel.merge`).

Entry points: :func:`run_parallel` (engine),
``Campaign.run(jobs=N, resume=...)`` (campaign integration),
``python -m repro.experiments.cli --jobs N`` (figures), and
``python -m repro.parallel.selfcheck`` (interrupt/resume verification).
See ``docs/parallel.md``.
"""

from .errors import (
    CampaignInterrupted,
    DuplicateJobError,
    JobFailedError,
    JournalError,
    ParallelError,
    RetryBudgetExceeded,
)
from .jobs import Job, RecordView, build_jobs, job_id
from .journal import JOURNAL_FILENAME, CheckpointJournal, JournalState
from .merge import (
    merge_metrics_dicts,
    merge_metrics_files,
    merge_series_dicts,
    merge_series_files,
    merge_trace_files,
)
from .pool import ParallelResult, run_parallel

__all__ = [
    "ParallelError",
    "JournalError",
    "DuplicateJobError",
    "JobFailedError",
    "RetryBudgetExceeded",
    "CampaignInterrupted",
    "Job",
    "RecordView",
    "build_jobs",
    "job_id",
    "CheckpointJournal",
    "JournalState",
    "JOURNAL_FILENAME",
    "merge_trace_files",
    "merge_metrics_files",
    "merge_metrics_dicts",
    "merge_series_files",
    "merge_series_dicts",
    "ParallelResult",
    "run_parallel",
]
