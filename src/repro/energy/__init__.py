"""Energy model substrate (paper §III.C).

Per-processor power states and exact event-driven energy integration
(Eq. 5), node aggregation (Eq. 6), the system metric ``ECS``, and derived
efficiency figures of merit.
"""

from .accounting import NodeEnergy, SystemEnergy, node_energy, system_energy
from .efficiency import EfficiencyReport, efficiency_report
from .meter import EnergyBreakdown, ProcState, ProcessorEnergyMeter
from .power_model import (
    DEFAULT_PMAX_W,
    DEFAULT_PMIN_W,
    DEFAULT_SLEEP_FRACTION,
    PEAK_POWER_RANGE_W,
    PowerProfile,
    constant_power_profile,
    proportional_power_profile,
)

__all__ = [
    "PowerProfile",
    "constant_power_profile",
    "proportional_power_profile",
    "PEAK_POWER_RANGE_W",
    "DEFAULT_PMAX_W",
    "DEFAULT_PMIN_W",
    "DEFAULT_SLEEP_FRACTION",
    "ProcState",
    "ProcessorEnergyMeter",
    "EnergyBreakdown",
    "NodeEnergy",
    "SystemEnergy",
    "node_energy",
    "system_energy",
    "EfficiencyReport",
    "efficiency_report",
]
