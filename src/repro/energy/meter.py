"""Event-driven energy integration per processor (Eq. 5 and extensions).

A :class:`ProcessorEnergyMeter` records state transitions (busy / idle /
sleep) with timestamps and integrates ``power × time`` exactly — no
sampling error.  The paper's per-processor energy

    ``PPj = pmax · Σ ETi + pmin · t_idle``            (Eq. 5)

is the special case with no sleep time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from .power_model import PowerProfile

__all__ = ["ProcState", "ProcessorEnergyMeter", "EnergyBreakdown"]


class ProcState(enum.Enum):
    """Power states a processor can occupy."""

    BUSY = "busy"
    IDLE = "idle"
    SLEEP = "sleep"


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-state time and energy totals for one processor."""

    busy_time: float
    idle_time: float
    sleep_time: float
    busy_energy: float
    idle_energy: float
    sleep_energy: float

    @property
    def total_time(self) -> float:
        return self.busy_time + self.idle_time + self.sleep_time

    @property
    def total_energy(self) -> float:
        """``PPj`` — total energy consumed by the processor."""
        return self.busy_energy + self.idle_energy + self.sleep_energy

    @property
    def utilization(self) -> float:
        """Fraction of non-sleep wall time spent busy.

        The paper defines utilization as "the percentage of time the
        processor was busy servicing tasks" (§V, Experiment 2); we measure
        it against powered-on time (busy + idle).  When the processor
        never powered on, utilization is 0.
        """
        powered = self.busy_time + self.idle_time
        return self.busy_time / powered if powered > 0 else 0.0


class ProcessorEnergyMeter:
    """Integrates a single processor's energy across state transitions."""

    def __init__(self, profile: PowerProfile, start_time: float = 0.0) -> None:
        self.profile = profile
        self._state = ProcState.IDLE
        #: Time metering began — kept so auditors can check time closure
        #: (``busy + idle + sleep == last_transition − start_time``).
        self.start_time = float(start_time)
        self._since = float(start_time)
        # Per-state accumulators as plain attributes: the learning-cycle
        # sampler reads these for every processor on every cycle, and
        # attribute access beats enum-keyed dict lookups there.
        self._busy_time = 0.0
        self._idle_time = 0.0
        self._sleep_time = 0.0
        self._busy_energy = 0.0
        self._idle_energy = 0.0
        self._sleep_energy = 0.0
        self._finalized_at: float | None = None
        self._power_override: Optional[float] = None
        # Optional observability hookup (None keeps set_state at one
        # extra attribute check); see bind_telemetry().
        self._telemetry = None
        self.owner: str = ""

    def bind_telemetry(self, telemetry, owner: str) -> None:
        """Attach a :class:`~repro.obs.Telemetry` that receives an
        ``energy.state`` trace event on every state transition, tagged
        with *owner* (the processor id)."""
        self._telemetry = telemetry
        self.owner = owner

    @property
    def state(self) -> ProcState:
        """The processor's current power state."""
        return self._state

    @property
    def last_transition(self) -> float:
        """Time of the most recent state change."""
        return self._since

    def set_state(
        self, state: ProcState, now: float, power_w: Optional[float] = None
    ) -> None:
        """Transition to *state* at time *now*, charging the elapsed span.

        ``power_w`` overrides the profile's draw for the *new* state —
        used by DVFS, where busy power depends on the frequency the task
        runs at rather than on the state alone.
        """
        if self._finalized_at is not None:
            raise RuntimeError("meter already finalized")
        if not isinstance(state, ProcState):
            raise TypeError(f"state must be a ProcState, got {state!r}")
        if power_w is not None and power_w < 0:
            raise ValueError("power_w must be non-negative")
        tel = self._telemetry
        if tel is not None and tel.tracing and state is not self._state:
            tel.emit(
                "energy",
                "state",
                now,
                proc=self.owner,
                from_state=self._state.value,
                to_state=state.value,
            )
        self._charge(now)
        self._state = state
        self._power_override = power_w

    def _current_power(self) -> float:
        if self._power_override is not None:
            return self._power_override
        return self.profile.power_at(self._state.value)

    def _charge(self, now: float) -> None:
        if now < self._since:
            raise ValueError(
                f"time moved backwards: {now} < last transition {self._since}"
            )
        span = now - self._since
        if span > 0:
            energy = span * self._current_power()
            state = self._state
            if state is ProcState.BUSY:
                self._busy_time += span
                self._busy_energy += energy
            elif state is ProcState.IDLE:
                self._idle_time += span
                self._idle_energy += energy
            else:
                self._sleep_time += span
                self._sleep_energy += energy
        self._since = now

    def finalize(self, now: float) -> EnergyBreakdown:
        """Charge the final span and freeze the meter."""
        self._charge(now)
        self._finalized_at = now
        return self.snapshot()

    def powered_times(self, now: float) -> tuple[float, float]:
        """``(busy_time, idle_time)`` as of *now*, without allocation.

        The learning-cycle sampler reads only these two fields from
        every processor on every cycle; this accessor reproduces
        :meth:`snapshot`'s arithmetic for them exactly (the accruing
        span is added to the current state's total) while skipping the
        dict copies and the :class:`EnergyBreakdown` construction.
        """
        busy = self._busy_time
        idle = self._idle_time
        if self._finalized_at is None:
            if now < self._since:
                raise ValueError("snapshot time precedes last transition")
            span = now - self._since
            if self._state is ProcState.BUSY:
                busy += span
            elif self._state is ProcState.IDLE:
                idle += span
        return busy, idle

    def snapshot(self, now: float | None = None) -> EnergyBreakdown:
        """Breakdown as of the last transition (or *now* if given).

        Passing *now* includes the currently accruing span without
        mutating the meter.
        """
        busy_time = self._busy_time
        idle_time = self._idle_time
        sleep_time = self._sleep_time
        busy_energy = self._busy_energy
        idle_energy = self._idle_energy
        sleep_energy = self._sleep_energy
        if now is not None and self._finalized_at is None:
            if now < self._since:
                raise ValueError("snapshot time precedes last transition")
            span = now - self._since
            accrued = span * self._current_power()
            state = self._state
            if state is ProcState.BUSY:
                busy_time += span
                busy_energy += accrued
            elif state is ProcState.IDLE:
                idle_time += span
                idle_energy += accrued
            else:
                sleep_time += span
                sleep_energy += accrued
        return EnergyBreakdown(
            busy_time=busy_time,
            idle_time=idle_time,
            sleep_time=sleep_time,
            busy_energy=busy_energy,
            idle_energy=idle_energy,
            sleep_energy=sleep_energy,
        )
