"""Event-driven energy integration per processor (Eq. 5 and extensions).

A :class:`ProcessorEnergyMeter` records state transitions (busy / idle /
sleep) with timestamps and integrates ``power × time`` exactly — no
sampling error.  The paper's per-processor energy

    ``PPj = pmax · Σ ETi + pmin · t_idle``            (Eq. 5)

is the special case with no sleep time.

Struct-of-arrays layout
-----------------------
Since the columnar refactor a meter owns no accumulators: all Eq. 5
state (current power state, last-transition time, the six per-state
time/energy totals, the DVFS override, the per-state profile powers)
lives in the module-level :class:`MeterBank` — one preallocated float64
/ int8 column per field, one row per meter.  The meter object is a
2-slot ``(bank, row)`` view whose methods perform the identical IEEE-754
operations on array cells, and whose ``_busy_time``-style attributes
survive as properties (the strict-mode auditor and the learning-cycle
sampler read them; tests write them to provoke violations).

What the layout buys: whole-population readers — the per-cycle sampler
(:meth:`MeterBank.sample_cycle`), the busy-processor count
(:meth:`MeterBank.busy_count`), the per-node power snapshot
(:meth:`MeterBank.current_power`) — gather columns with one NumPy fancy
index instead of a Python loop over meter objects, while keeping the
exact per-meter float bits (sums stay left-to-right where the scalar
code summed left-to-right).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..sim.columnar import FloatColumn, IntColumn
from .power_model import PowerProfile

__all__ = ["ProcState", "ProcessorEnergyMeter", "EnergyBreakdown", "MeterBank"]


class ProcState(enum.Enum):
    """Power states a processor can occupy."""

    BUSY = "busy"
    IDLE = "idle"
    SLEEP = "sleep"


#: Column encoding of :class:`ProcState` (int8 codes).
BUSY_CODE, IDLE_CODE, SLEEP_CODE = 0, 1, 2
_STATE_TO_CODE = {
    ProcState.BUSY: BUSY_CODE,
    ProcState.IDLE: IDLE_CODE,
    ProcState.SLEEP: SLEEP_CODE,
}
_CODE_TO_STATE = (ProcState.BUSY, ProcState.IDLE, ProcState.SLEEP)

_NAN = float("nan")


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-state time and energy totals for one processor."""

    busy_time: float
    idle_time: float
    sleep_time: float
    busy_energy: float
    idle_energy: float
    sleep_energy: float

    @property
    def total_time(self) -> float:
        return self.busy_time + self.idle_time + self.sleep_time

    @property
    def total_energy(self) -> float:
        """``PPj`` — total energy consumed by the processor."""
        return self.busy_energy + self.idle_energy + self.sleep_energy

    @property
    def utilization(self) -> float:
        """Fraction of non-sleep wall time spent busy.

        The paper defines utilization as "the percentage of time the
        processor was busy servicing tasks" (§V, Experiment 2); we measure
        it against powered-on time (busy + idle).  When the processor
        never powered on, utilization is 0.
        """
        powered = self.busy_time + self.idle_time
        return self.busy_time / powered if powered > 0 else 0.0


class MeterBank:
    """Columnar Eq. 5 accumulators across every meter in the process.

    Rows are append-only and never recycled; columns grow by doubling.
    Meters are created at system-construction time and mutated by the
    single engine thread, so access is lock-free.
    """

    __slots__ = (
        "state",
        "since",
        "busy_time",
        "idle_time",
        "sleep_time",
        "busy_energy",
        "idle_energy",
        "sleep_energy",
        "power_override",
        "finalized_at",
        "p_busy",
        "p_idle",
        "p_sleep",
    )

    def __init__(self, capacity: int = 64) -> None:
        self.state = IntColumn(capacity, dtype=np.int8)
        self.since = FloatColumn(capacity)
        self.busy_time = FloatColumn(capacity)
        self.idle_time = FloatColumn(capacity)
        self.sleep_time = FloatColumn(capacity)
        self.busy_energy = FloatColumn(capacity)
        self.idle_energy = FloatColumn(capacity)
        self.sleep_energy = FloatColumn(capacity)
        #: DVFS busy-power override; NaN = "use the profile's draw".
        self.power_override = FloatColumn(capacity)
        #: Finalization time; NaN = still metering.
        self.finalized_at = FloatColumn(capacity)
        # Per-state profile powers, denormalized per row so vectorized
        # power reads never touch the profile objects.
        self.p_busy = FloatColumn(capacity)
        self.p_idle = FloatColumn(capacity)
        self.p_sleep = FloatColumn(capacity)

    def __len__(self) -> int:
        return len(self.since)

    def add(self, profile: PowerProfile, start_time: float) -> int:
        """Allocate a row for a new meter (initially IDLE)."""
        row = self.state.append(IDLE_CODE)
        self.since.append(start_time)
        self.busy_time.append(0.0)
        self.idle_time.append(0.0)
        self.sleep_time.append(0.0)
        self.busy_energy.append(0.0)
        self.idle_energy.append(0.0)
        self.sleep_energy.append(0.0)
        self.power_override.append(_NAN)
        self.finalized_at.append(_NAN)
        self.p_busy.append(profile.power_at(ProcState.BUSY.value))
        self.p_idle.append(profile.power_at(ProcState.IDLE.value))
        self.p_sleep.append(profile.power_at(ProcState.SLEEP.value))
        return row

    # -- vectorized whole-population readers ----------------------------
    def sample_cycle(self, rows: np.ndarray, now: float):
        """``(busy_sum, powered_sum, busy_count)`` over *rows* at *now*.

        Bit-identical to the scalar per-meter loop it replaces: the
        accruing span is added with the same ``b + (now - since)``
        expression, and both sums run left-to-right over the gathered
        (row-ordered) values, exactly like the ``+=`` loop did.
        """
        b = self.busy_time.data[rows]
        i = self.idle_time.data[rows]
        codes = self.state.data[rows]
        live = np.isnan(self.finalized_at.data[rows])
        spans = now - self.since.data[rows]
        busy_mask = codes == BUSY_CODE
        b = np.where(busy_mask & live, b + spans, b)
        i = np.where((codes == IDLE_CODE) & live, i + spans, i)
        busy = sum(b.tolist())
        powered = sum((b + i).tolist())
        return busy, powered, int(np.count_nonzero(busy_mask))

    def busy_count(self, rows: np.ndarray) -> int:
        """Number of *rows* currently in the BUSY state."""
        return int(np.count_nonzero(self.state.data[rows] == BUSY_CODE))

    def current_power(self, rows: np.ndarray) -> np.ndarray:
        """Instantaneous draw per row — vectorized ``_current_power``."""
        codes = self.state.data[rows]
        by_state = np.where(
            codes == BUSY_CODE,
            self.p_busy.data[rows],
            np.where(
                codes == IDLE_CODE,
                self.p_idle.data[rows],
                self.p_sleep.data[rows],
            ),
        )
        override = self.power_override.data[rows]
        return np.where(np.isnan(override), by_state, override)

    def sleep_count(self, rows: np.ndarray) -> int:
        """Number of *rows* currently in the SLEEP state."""
        return int(np.count_nonzero(self.state.data[rows] == SLEEP_CODE))


#: Process-wide bank backing every :class:`ProcessorEnergyMeter`.
BANK = MeterBank()


class ProcessorEnergyMeter:
    """Integrates a single processor's energy across state transitions.

    A ``(bank, row)`` view over :data:`BANK` (see module docstring); the
    public surface — and the ``_``-prefixed accumulator attributes the
    auditor and sampler rely on — is unchanged from the per-object
    version.  Deliberately no ``__slots__``: the strict-mode auditor
    shims ``set_state``/``finalize`` per instance.
    """

    def __init__(self, profile: PowerProfile, start_time: float = 0.0) -> None:
        self.profile = profile
        #: Time metering began — kept so auditors can check time closure
        #: (``busy + idle + sleep == last_transition − start_time``).
        self.start_time = float(start_time)
        self._bank = BANK
        self._row = BANK.add(profile, self.start_time)
        # Optional observability hookup (None keeps set_state at one
        # extra attribute check); see bind_telemetry().
        self._telemetry = None
        self.owner: str = ""

    def bind_telemetry(self, telemetry, owner: str) -> None:
        """Attach a :class:`~repro.obs.Telemetry` that receives an
        ``energy.state`` trace event on every state transition, tagged
        with *owner* (the processor id)."""
        self._telemetry = telemetry
        self.owner = owner

    # -- columnar cell accessors (auditor/sampler-visible "privates") ----
    @property
    def _state(self) -> ProcState:
        return _CODE_TO_STATE[self._bank.state.data[self._row]]

    @_state.setter
    def _state(self, state: ProcState) -> None:
        self._bank.state.data[self._row] = _STATE_TO_CODE[state]

    @property
    def _since(self) -> float:
        return self._bank.since.data[self._row]

    @_since.setter
    def _since(self, value: float) -> None:
        self._bank.since.data[self._row] = value

    @property
    def _busy_time(self) -> float:
        return self._bank.busy_time.data[self._row]

    @_busy_time.setter
    def _busy_time(self, value: float) -> None:
        self._bank.busy_time.data[self._row] = value

    @property
    def _idle_time(self) -> float:
        return self._bank.idle_time.data[self._row]

    @_idle_time.setter
    def _idle_time(self, value: float) -> None:
        self._bank.idle_time.data[self._row] = value

    @property
    def _sleep_time(self) -> float:
        return self._bank.sleep_time.data[self._row]

    @_sleep_time.setter
    def _sleep_time(self, value: float) -> None:
        self._bank.sleep_time.data[self._row] = value

    @property
    def _busy_energy(self) -> float:
        return self._bank.busy_energy.data[self._row]

    @_busy_energy.setter
    def _busy_energy(self, value: float) -> None:
        self._bank.busy_energy.data[self._row] = value

    @property
    def _idle_energy(self) -> float:
        return self._bank.idle_energy.data[self._row]

    @_idle_energy.setter
    def _idle_energy(self, value: float) -> None:
        self._bank.idle_energy.data[self._row] = value

    @property
    def _sleep_energy(self) -> float:
        return self._bank.sleep_energy.data[self._row]

    @_sleep_energy.setter
    def _sleep_energy(self, value: float) -> None:
        self._bank.sleep_energy.data[self._row] = value

    @property
    def _power_override(self) -> Optional[float]:
        v = self._bank.power_override.data[self._row]
        return None if v != v else v

    @_power_override.setter
    def _power_override(self, value: Optional[float]) -> None:
        self._bank.power_override.data[self._row] = (
            _NAN if value is None else value
        )

    @property
    def _finalized_at(self) -> Optional[float]:
        v = self._bank.finalized_at.data[self._row]
        return None if v != v else v

    @_finalized_at.setter
    def _finalized_at(self, value: Optional[float]) -> None:
        self._bank.finalized_at.data[self._row] = (
            _NAN if value is None else value
        )

    # -- public surface --------------------------------------------------
    @property
    def state(self) -> ProcState:
        """The processor's current power state."""
        return _CODE_TO_STATE[self._bank.state.data[self._row]]

    @property
    def last_transition(self) -> float:
        """Time of the most recent state change."""
        return self._bank.since.data[self._row]

    def set_state(
        self, state: ProcState, now: float, power_w: Optional[float] = None
    ) -> None:
        """Transition to *state* at time *now*, charging the elapsed span.

        ``power_w`` overrides the profile's draw for the *new* state —
        used by DVFS, where busy power depends on the frequency the task
        runs at rather than on the state alone.
        """
        bank, row = self._bank, self._row
        if not np.isnan(bank.finalized_at.data[row]):
            raise RuntimeError("meter already finalized")
        if not isinstance(state, ProcState):
            raise TypeError(f"state must be a ProcState, got {state!r}")
        if power_w is not None and power_w < 0:
            raise ValueError("power_w must be non-negative")
        tel = self._telemetry
        code = _STATE_TO_CODE[state]
        if tel is not None and tel.tracing and code != bank.state.data[row]:
            tel.emit(
                "energy",
                "state",
                now,
                proc=self.owner,
                from_state=_CODE_TO_STATE[bank.state.data[row]].value,
                to_state=state.value,
            )
        self._charge(now)
        bank.state.data[row] = code
        bank.power_override.data[row] = _NAN if power_w is None else power_w

    def _current_power(self) -> float:
        bank, row = self._bank, self._row
        override = bank.power_override.data[row]
        if override == override:
            return override
        code = bank.state.data[row]
        if code == BUSY_CODE:
            return bank.p_busy.data[row]
        if code == IDLE_CODE:
            return bank.p_idle.data[row]
        return bank.p_sleep.data[row]

    def _charge(self, now: float) -> None:
        bank, row = self._bank, self._row
        since = bank.since.data[row]
        if now < since:
            raise ValueError(
                f"time moved backwards: {now} < last transition {since}"
            )
        span = now - since
        if span > 0:
            energy = span * self._current_power()
            code = bank.state.data[row]
            if code == BUSY_CODE:
                bank.busy_time.data[row] += span
                bank.busy_energy.data[row] += energy
            elif code == IDLE_CODE:
                bank.idle_time.data[row] += span
                bank.idle_energy.data[row] += energy
            else:
                bank.sleep_time.data[row] += span
                bank.sleep_energy.data[row] += energy
        bank.since.data[row] = now

    def finalize(self, now: float) -> EnergyBreakdown:
        """Charge the final span and freeze the meter."""
        self._charge(now)
        self._bank.finalized_at.data[self._row] = now
        return self.snapshot()

    def powered_times(self, now: float) -> tuple[float, float]:
        """``(busy_time, idle_time)`` as of *now*, without allocation.

        The learning-cycle sampler reads only these two fields from
        every processor on every cycle; this accessor reproduces
        :meth:`snapshot`'s arithmetic for them exactly (the accruing
        span is added to the current state's total) while skipping the
        dict copies and the :class:`EnergyBreakdown` construction.
        """
        bank, row = self._bank, self._row
        busy = bank.busy_time.data[row]
        idle = bank.idle_time.data[row]
        if np.isnan(bank.finalized_at.data[row]):
            since = bank.since.data[row]
            if now < since:
                raise ValueError("snapshot time precedes last transition")
            span = now - since
            code = bank.state.data[row]
            if code == BUSY_CODE:
                busy += span
            elif code == IDLE_CODE:
                idle += span
        return busy, idle

    def snapshot(self, now: float | None = None) -> EnergyBreakdown:
        """Breakdown as of the last transition (or *now* if given).

        Passing *now* includes the currently accruing span without
        mutating the meter.
        """
        bank, row = self._bank, self._row
        busy_time = bank.busy_time.data[row]
        idle_time = bank.idle_time.data[row]
        sleep_time = bank.sleep_time.data[row]
        busy_energy = bank.busy_energy.data[row]
        idle_energy = bank.idle_energy.data[row]
        sleep_energy = bank.sleep_energy.data[row]
        if now is not None and np.isnan(bank.finalized_at.data[row]):
            since = bank.since.data[row]
            if now < since:
                raise ValueError("snapshot time precedes last transition")
            span = now - since
            accrued = span * self._current_power()
            code = bank.state.data[row]
            if code == BUSY_CODE:
                busy_time += span
                busy_energy += accrued
            elif code == IDLE_CODE:
                idle_time += span
                idle_energy += accrued
            else:
                sleep_time += span
                sleep_energy += accrued
        return EnergyBreakdown(
            busy_time=busy_time,
            idle_time=idle_time,
            sleep_time=sleep_time,
            busy_energy=busy_energy,
            idle_energy=idle_energy,
            sleep_energy=sleep_energy,
        )
