"""Node- and system-level energy aggregation (Eqs. 5–6, ECS).

- per-node energy    ``Ec  = (1/m) · Σ_j PPj``       (Eq. 6)
- system energy      ``ECS = Σ_c Ec``                (§V, Experiment 1)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .meter import EnergyBreakdown

__all__ = ["NodeEnergy", "SystemEnergy", "node_energy", "system_energy"]


@dataclass(frozen=True)
class NodeEnergy:
    """Aggregated energy for one compute node."""

    node_id: str
    num_processors: int
    #: ``Ec`` — mean per-processor energy (Eq. 6).
    energy: float
    #: Sum of raw per-processor energies ``Σ PPj``.
    total_processor_energy: float
    busy_time: float
    idle_time: float
    sleep_time: float

    @property
    def utilization(self) -> float:
        """Busy fraction of the node's powered-on processor time."""
        powered = self.busy_time + self.idle_time
        return self.busy_time / powered if powered > 0 else 0.0


@dataclass(frozen=True)
class SystemEnergy:
    """Aggregated energy for the whole system."""

    #: ``ECS = Σ_c Ec`` — the paper's system-energy metric.
    ecs: float
    #: Total raw energy across every processor.
    total_energy: float
    num_nodes: int
    num_processors: int
    busy_time: float
    idle_time: float
    sleep_time: float

    @property
    def utilization(self) -> float:
        powered = self.busy_time + self.idle_time
        return self.busy_time / powered if powered > 0 else 0.0

    @property
    def mean_node_energy(self) -> float:
        return self.ecs / self.num_nodes if self.num_nodes else 0.0


def node_energy(node_id: str, breakdowns: Sequence[EnergyBreakdown]) -> NodeEnergy:
    """Aggregate processor breakdowns into a :class:`NodeEnergy` (Eq. 6)."""
    if not breakdowns:
        raise ValueError(f"node {node_id}: no processor breakdowns")
    total = sum(b.total_energy for b in breakdowns)
    return NodeEnergy(
        node_id=node_id,
        num_processors=len(breakdowns),
        energy=total / len(breakdowns),
        total_processor_energy=total,
        busy_time=sum(b.busy_time for b in breakdowns),
        idle_time=sum(b.idle_time for b in breakdowns),
        sleep_time=sum(b.sleep_time for b in breakdowns),
    )


def system_energy(nodes: Iterable[NodeEnergy]) -> SystemEnergy:
    """Aggregate node energies into the system metric ``ECS``."""
    nodes = list(nodes)
    if not nodes:
        raise ValueError("no node energies to aggregate")
    return SystemEnergy(
        ecs=sum(n.energy for n in nodes),
        total_energy=sum(n.total_processor_energy for n in nodes),
        num_nodes=len(nodes),
        num_processors=sum(n.num_processors for n in nodes),
        busy_time=sum(n.busy_time for n in nodes),
        idle_time=sum(n.idle_time for n in nodes),
        sleep_time=sum(n.sleep_time for n in nodes),
    )
