"""Processor power model (paper §III.C, Eq. 5).

Each processor draws ``pmax`` watts while executing a task and ``pmin``
watts while idle-but-available (the paper cites idle power at roughly 50 %
of peak).  The paper's experiments fix ``pmax = 95`` and ``pmin = 48``; the
model alternatively derives per-processor peak power proportionally to
processing capacity within the cited 80–95 W band ("the peak power is
proportional to its processing capacity", §III.C).

Substitution A7 (see DESIGN.md): nodes may power-gate into a sleep state
drawing ``p_sleep`` watts, which makes the energy comparison between
schedulers non-degenerate while preserving the paper's utilization↔energy
mechanism.  Setting ``sleep_fraction`` so that ``p_sleep == pmin`` (or
disabling sleep at the node level) recovers Eq. 5 literally.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PowerProfile",
    "constant_power_profile",
    "proportional_power_profile",
    "PEAK_POWER_RANGE_W",
    "DEFAULT_PMAX_W",
    "DEFAULT_PMIN_W",
    "DEFAULT_SLEEP_FRACTION",
]

#: Peak-power band for HPC processors cited by the paper (§I, §III.B).
PEAK_POWER_RANGE_W = (80.0, 95.0)
#: Experiment settings from §V.A.
DEFAULT_PMAX_W = 95.0
DEFAULT_PMIN_W = 48.0
#: Sleep power as a fraction of idle power (substitution A7).
DEFAULT_SLEEP_FRACTION = 0.10


@dataclass(frozen=True)
class PowerProfile:
    """Static power characteristics of one processor.

    Attributes
    ----------
    p_max_w:
        Power draw at 100 % utilization (busy), watts.
    p_min_w:
        Power draw while idle but available, watts.
    p_sleep_w:
        Power draw while power-gated (sleeping), watts.
    """

    p_max_w: float = DEFAULT_PMAX_W
    p_min_w: float = DEFAULT_PMIN_W
    p_sleep_w: float = DEFAULT_PMIN_W * DEFAULT_SLEEP_FRACTION

    def __post_init__(self) -> None:
        if self.p_max_w <= 0:
            raise ValueError("p_max_w must be positive")
        if not 0 <= self.p_min_w <= self.p_max_w:
            raise ValueError("p_min_w must lie in [0, p_max_w]")
        if not 0 <= self.p_sleep_w <= self.p_min_w:
            raise ValueError("p_sleep_w must lie in [0, p_min_w]")

    def power_at(self, state: str) -> float:
        """Power draw (watts) for a state name: busy / idle / sleep."""
        if state == "busy":
            return self.p_max_w
        if state == "idle":
            return self.p_min_w
        if state == "sleep":
            return self.p_sleep_w
        raise ValueError(f"unknown processor state {state!r}")


def constant_power_profile(
    p_max_w: float = DEFAULT_PMAX_W,
    p_min_w: float = DEFAULT_PMIN_W,
    sleep_fraction: float = DEFAULT_SLEEP_FRACTION,
) -> PowerProfile:
    """The paper's experiment profile: fixed pmax/pmin for every processor."""
    return PowerProfile(
        p_max_w=p_max_w, p_min_w=p_min_w, p_sleep_w=p_min_w * sleep_fraction
    )


def proportional_power_profile(
    speed_mips: float,
    speed_range_mips: tuple[float, float] = (500.0, 1000.0),
    power_range_w: tuple[float, float] = PEAK_POWER_RANGE_W,
    idle_fraction: float = 0.5,
    sleep_fraction: float = DEFAULT_SLEEP_FRACTION,
) -> PowerProfile:
    """Peak power proportional to processing capacity (§III.C).

    A processor at the bottom of *speed_range_mips* draws the low end of
    *power_range_w* at peak; the fastest draws the high end.  Idle power is
    ``idle_fraction`` of peak (paper cites ≈50 % [8]).
    """
    lo_s, hi_s = speed_range_mips
    lo_p, hi_p = power_range_w
    if not 0 < lo_s <= hi_s:
        raise ValueError(f"invalid speed range {speed_range_mips}")
    if not 0 < lo_p <= hi_p:
        raise ValueError(f"invalid power range {power_range_w}")
    if not 0 < idle_fraction <= 1:
        raise ValueError("idle_fraction must lie in (0, 1]")
    # Clamp speeds outside the nominal range (heterogeneity sweeps may
    # synthesize them) to the band edges.
    frac = (min(max(speed_mips, lo_s), hi_s) - lo_s) / (hi_s - lo_s) if hi_s > lo_s else 0.0
    p_max = lo_p + frac * (hi_p - lo_p)
    p_min = idle_fraction * p_max
    return PowerProfile(p_max_w=p_max, p_min_w=p_min, p_sleep_w=p_min * sleep_fraction)
