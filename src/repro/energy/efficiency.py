"""Derived energy-efficiency metrics.

These are not defined in the paper but are standard figures of merit used
by the ablation benches to interpret results: energy per completed task,
energy-delay product, and the idle-waste fraction the paper's introduction
motivates ("the majority of the electricity that passes through them is
wasted").
"""

from __future__ import annotations

from dataclasses import dataclass

from .accounting import SystemEnergy

__all__ = ["EfficiencyReport", "efficiency_report"]


@dataclass(frozen=True)
class EfficiencyReport:
    """Energy-efficiency figures of merit for one simulation run."""

    energy_per_task: float
    energy_delay_product: float
    idle_waste_fraction: float
    utilization: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"energy/task={self.energy_per_task:.1f}  "
            f"EDP={self.energy_delay_product:.1f}  "
            f"idle-waste={self.idle_waste_fraction:.1%}  "
            f"util={self.utilization:.1%}"
        )


def efficiency_report(
    energy: SystemEnergy, completed_tasks: int, mean_response_time: float
) -> EfficiencyReport:
    """Build an :class:`EfficiencyReport` from run-level aggregates.

    Parameters
    ----------
    energy:
        System energy aggregate for the run.
    completed_tasks:
        Number of tasks that finished within the observation window.
    mean_response_time:
        ``AveRT`` for the run.
    """
    if completed_tasks < 0:
        raise ValueError("completed_tasks must be non-negative")
    if mean_response_time < 0:
        raise ValueError("mean_response_time must be non-negative")
    per_task = energy.total_energy / completed_tasks if completed_tasks else float("inf")
    # Idle waste: share of total energy burned while idle-but-available.
    # Computed from times weighted by the respective state powers is not
    # recoverable from SystemEnergy alone, so approximate with time share
    # of powered-on time, which is exact when all profiles are identical.
    powered_time = energy.busy_time + energy.idle_time
    idle_fraction = energy.idle_time / powered_time if powered_time > 0 else 0.0
    return EfficiencyReport(
        energy_per_task=per_task,
        energy_delay_product=per_task * mean_response_time,
        idle_waste_fraction=idle_fraction,
        utilization=energy.utilization,
    )
