"""repro — reproduction of Hussin, Lee & Zomaya (ICPP 2011).

"Efficient Energy Management using Adaptive Reinforcement Learning-based
Scheduling in Large-Scale Distributed Systems."

Public surface (see README for the architecture overview):

- :mod:`repro.sim` — discrete-event simulation kernel;
- :mod:`repro.workload` — task model and synthetic workload generation;
- :mod:`repro.cluster` — processors, nodes, sites, topology synthesis;
- :mod:`repro.energy` — power states and energy accounting (Eqs. 5–6);
- :mod:`repro.rl` — Q-learning, exploration policies, MLP, replay;
- :mod:`repro.core` — the Adaptive-RL scheduler (the paper's §IV);
- :mod:`repro.baselines` — Online RL, Q+ learning, Prediction-based,
  plus non-learning reference schedulers;
- :mod:`repro.metrics` — AveRT, ECS, success rate, utilization series;
- :mod:`repro.experiments` — run harness and figure regenerators;
- :mod:`repro.obs` — event tracing, metrics, profiling;
- :mod:`repro.parallel` — process-pool campaign execution with
  checkpoint/resume.

Quickstart
----------
>>> from repro import ExperimentConfig, run_experiment
>>> result = run_experiment(ExperimentConfig(scheduler="adaptive-rl",
...                                          num_tasks=200, seed=7))
>>> result.metrics.success_rate > 0.5
True
"""

import importlib

__version__ = "1.0.0"

# Lazy public surface (PEP 562).  Standalone tools — most importantly
# ``python -m repro.workload.verify``, whose whole point is rechecking
# results WITHOUT importing any scheduler — must be able to import their
# subpackage without this __init__ dragging in the RL stack.
_LAZY_EXPORTS = {
    "AdaptiveRLScheduler": ("repro.core.adaptive_rl", "AdaptiveRLScheduler"),
    "AdaptiveRLConfig": ("repro.core.adaptive_rl", "AdaptiveRLConfig"),
    "ExperimentConfig": ("repro.experiments.config", "ExperimentConfig"),
    "default_platform": ("repro.experiments.config", "default_platform"),
    "run_experiment": ("repro.experiments.runner", "run_experiment"),
    "RunResult": ("repro.experiments.runner", "RunResult"),
    "make_scheduler": ("repro.experiments.schedulers", "make_scheduler"),
    "register_scheduler": ("repro.experiments.schedulers", "register_scheduler"),
}

__all__ = [*_LAZY_EXPORTS, "__version__"]


def __getattr__(name):
    try:
        module, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(importlib.import_module(module), attr)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted({*globals(), *_LAZY_EXPORTS})
