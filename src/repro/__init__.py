"""repro — reproduction of Hussin, Lee & Zomaya (ICPP 2011).

"Efficient Energy Management using Adaptive Reinforcement Learning-based
Scheduling in Large-Scale Distributed Systems."

Public surface (see README for the architecture overview):

- :mod:`repro.sim` — discrete-event simulation kernel;
- :mod:`repro.workload` — task model and synthetic workload generation;
- :mod:`repro.cluster` — processors, nodes, sites, topology synthesis;
- :mod:`repro.energy` — power states and energy accounting (Eqs. 5–6);
- :mod:`repro.rl` — Q-learning, exploration policies, MLP, replay;
- :mod:`repro.core` — the Adaptive-RL scheduler (the paper's §IV);
- :mod:`repro.baselines` — Online RL, Q+ learning, Prediction-based,
  plus non-learning reference schedulers;
- :mod:`repro.metrics` — AveRT, ECS, success rate, utilization series;
- :mod:`repro.experiments` — run harness and figure regenerators;
- :mod:`repro.obs` — event tracing, metrics, profiling;
- :mod:`repro.parallel` — process-pool campaign execution with
  checkpoint/resume.

Quickstart
----------
>>> from repro import ExperimentConfig, run_experiment
>>> result = run_experiment(ExperimentConfig(scheduler="adaptive-rl",
...                                          num_tasks=200, seed=7))
>>> result.metrics.success_rate > 0.5
True
"""

from .core.adaptive_rl import AdaptiveRLConfig, AdaptiveRLScheduler
from .experiments.config import ExperimentConfig, default_platform
from .experiments.runner import RunResult, run_experiment
from .experiments.schedulers import make_scheduler, register_scheduler

__version__ = "1.0.0"

__all__ = [
    "AdaptiveRLScheduler",
    "AdaptiveRLConfig",
    "ExperimentConfig",
    "default_platform",
    "run_experiment",
    "RunResult",
    "make_scheduler",
    "register_scheduler",
    "__version__",
]
