"""RL convergence probes for the flight recorder.

One :class:`ConvergenceProbes` instance rides a
:class:`~repro.obs.timeseries.PeriodicSampler` and, each tick, diffs the
learning state of every site agent against the previous tick:

- ``rl.q_delta_norm`` — L2 norm of the Q-table change since the last
  sample (union of set entries; unseen entries read as the table's
  initial value), summed over agents.  A run has converged when this
  decays toward zero.
- ``rl.q_updates`` — cumulative TD updates across agents.
- ``rl.policy_churn`` — number of (agent, state) greedy actions that
  changed since the last sample: the paper's "schedule as the learned
  action" stabilizing.
- ``rl.epsilon.mean`` — mean exploration rate across agents.
- ``rl.reward.mean`` / ``rl.l_val.mean`` — reward and learning-value
  (Eq. 7) per feedback since the last sample (windowed means).
- ``rl.memory.records`` / ``rl.memory.evictions`` — shared-memory ring
  traffic; ``rl.memory.hit_rate`` — fraction of best-experience queries
  answered by a state-matching entry since the last sample.

Everything is computed *at sample time* from state the learning core
already maintains — diffing :meth:`snapshot` copies between ticks rather
than instrumenting ``update()`` — so the decision hot path carries no
new work.  The probe is duck-typed against
:class:`~repro.core.adaptive_rl.AdaptiveRLScheduler` (an ``agents``
mapping of :class:`~repro.core.agent.SiteAgent`); value models without a
``table`` (the neural model) simply skip the table-derived series.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Hashable, Tuple

from .timeseries import SeriesBank

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.agent import SiteAgent

__all__ = ["ConvergenceProbes"]


class ConvergenceProbes:
    """Per-sample learning diagnostics for a multi-agent RL scheduler."""

    def __init__(self, scheduler) -> None:
        self._scheduler = scheduler
        #: Previous Q snapshot per agent id.
        self._last_q: Dict[str, Dict[Tuple[Hashable, Hashable], float]] = {}
        #: Previous greedy action per (agent id, state).
        self._last_policy: Dict[str, Dict[Hashable, Hashable]] = {}
        self._last_reward_sum = 0.0
        self._last_l_val_sum = 0.0
        self._last_feedbacks = 0
        self._last_queries = 0
        self._last_state_hits = 0

    # -- per-agent helpers -------------------------------------------------
    @staticmethod
    def _table(agent: "SiteAgent"):
        """The agent's Q store, when its value model has one."""
        table = getattr(agent.value_model, "table", None)
        if table is not None and hasattr(table, "snapshot"):
            return table
        return None

    @staticmethod
    def _delta_norm(
        old: Dict[Tuple[Hashable, Hashable], float],
        new: Dict[Tuple[Hashable, Hashable], float],
        initial_q: float,
    ) -> float:
        total = 0.0
        for key, value in new.items():
            diff = value - old.get(key, initial_q)
            total += diff * diff
        for key, value in old.items():
            if key not in new:  # pragma: no cover - entries never unset
                diff = value - initial_q
                total += diff * diff
        return total

    # -- the probe ---------------------------------------------------------
    def __call__(self, bank: SeriesBank, now: float) -> None:
        agents = self._scheduler.agents
        sq_norm = 0.0
        updates = 0
        churn = 0
        epsilon_sum = 0.0
        reward_sum = 0.0
        l_val_sum = 0.0
        feedbacks = 0
        for agent in agents.values():
            epsilon_sum += agent.exploration.epsilon
            reward_sum += agent.reward_sum
            l_val_sum += agent.l_val_sum
            feedbacks += agent.feedbacks
            table = self._table(agent)
            if table is None:
                updates += getattr(agent.value_model, "_updates", 0)
                continue
            updates += table.updates
            snap = table.snapshot()
            initial_q = getattr(table, "initial_q", 0.0)
            sq_norm += self._delta_norm(
                self._last_q.get(agent.agent_id, {}), snap, initial_q
            )
            policy = {
                state: table.best_action(state, agent.actions)
                for state in {s for s, _ in snap}
            }
            last_policy = self._last_policy.get(agent.agent_id, {})
            churn += sum(
                1
                for state, action in policy.items()
                if last_policy.get(state, action) != action
            )
            self._last_q[agent.agent_id] = snap
            self._last_policy[agent.agent_id] = policy

        bank.record("rl.q_delta_norm", now, math.sqrt(sq_norm))
        bank.record("rl.q_updates", now, updates)
        bank.record("rl.policy_churn", now, churn)
        if agents:
            bank.record("rl.epsilon.mean", now, epsilon_sum / len(agents))

        window = feedbacks - self._last_feedbacks
        bank.record(
            "rl.reward.mean",
            now,
            (reward_sum - self._last_reward_sum) / window if window else 0.0,
        )
        bank.record(
            "rl.l_val.mean",
            now,
            (l_val_sum - self._last_l_val_sum) / window if window else 0.0,
        )
        self._last_reward_sum = reward_sum
        self._last_l_val_sum = l_val_sum
        self._last_feedbacks = feedbacks

        memory = getattr(self._scheduler, "memory", None)
        if memory is not None:
            bank.record("rl.memory.records", now, memory.total_records)
            bank.record("rl.memory.evictions", now, memory.evictions)
            queries = memory.queries - self._last_queries
            hits = memory.state_hits - self._last_state_hits
            bank.record(
                "rl.memory.hit_rate", now, hits / queries if queries else 0.0
            )
            self._last_queries = memory.queries
            self._last_state_hits = memory.state_hits
