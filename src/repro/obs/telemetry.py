"""The `Telemetry` facade bundling trace + metrics + profiling.

One object carries all three pillars through a run; each pillar is
independently optional.  The module-level singleton
:data:`NULL_TELEMETRY` (everything off) is the default everywhere, so
instrumented hot paths cost one attribute check when observability is
disabled.

An *ambient* telemetry can be installed for code paths that cannot
thread the object explicitly (the figure functions call
``run_experiment`` internally): ``with use(tel): ...`` scopes it,
:func:`get_telemetry` reads it.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from .metrics import MetricsRegistry
from .profiler import Profiler
from .timeseries import DEFAULT_SAMPLE_EVERY, SeriesBank
from .trace import InMemoryRecorder, NullRecorder, TraceRecorder

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "capture",
    "get_telemetry",
    "set_telemetry",
    "use",
]


class Telemetry:
    """Bundle of (optional) trace recorder, metrics registry, profiler.

    Parameters
    ----------
    trace:
        A :class:`~repro.obs.trace.TraceRecorder`; ``None`` disables
        tracing (a shared null recorder is substituted).
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry`; ``None`` disables
        metric collection.
    profiler:
        A :class:`~repro.obs.profiler.Profiler`; ``None`` disables the
        profiling spans.
    series:
        A :class:`~repro.obs.timeseries.SeriesBank`; ``None`` disables
        the flight recorder (the kernel-level periodic sampler).
    sample_every:
        Sampling cadence in simulated time units (flight recorder only;
        defaults to :data:`~repro.obs.timeseries.DEFAULT_SAMPLE_EVERY`).
    """

    __slots__ = ("trace", "metrics", "profiler", "series", "sample_every",
                 "tracing", "metering", "profiling", "sampling", "active")

    def __init__(
        self,
        trace: Optional[TraceRecorder] = None,
        metrics: Optional[MetricsRegistry] = None,
        profiler: Optional[Profiler] = None,
        series: Optional[SeriesBank] = None,
        sample_every: Optional[float] = None,
    ) -> None:
        self.trace = trace if trace is not None else _NULL_RECORDER
        self.metrics = metrics
        self.profiler = profiler
        self.series = series
        self.sample_every = (
            float(sample_every)
            if sample_every is not None
            else DEFAULT_SAMPLE_EVERY
        )
        if self.sample_every <= 0:
            raise ValueError("sample_every must be positive")
        # Pillar flags are plain precomputed booleans: hot paths read
        # them once per operation and skip all telemetry work when off.
        self.tracing: bool = self.trace.active
        self.metering: bool = metrics is not None
        self.profiling: bool = profiler is not None
        self.sampling: bool = series is not None
        self.active: bool = (
            self.tracing or self.metering or self.profiling or self.sampling
        )

    def emit(self, category: str, name: str, t: float, **fields) -> None:
        """Forward one trace event to the recorder (no-op when off)."""
        self.trace.emit(category, name, t, **fields)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        on = [
            flag
            for flag, enabled in (
                ("trace", self.tracing),
                ("metrics", self.metering),
                ("profile", self.profiling),
                ("series", self.sampling),
            )
            if enabled
        ]
        return f"<Telemetry {'+'.join(on) if on else 'off'}>"


_NULL_RECORDER = NullRecorder()

#: The do-nothing default telemetry: every flag False, safe to share.
NULL_TELEMETRY = Telemetry()


def capture(
    trace: bool = True,
    metrics: bool = True,
    profile: bool = False,
    series: bool = False,
    sample_every: Optional[float] = None,
) -> Telemetry:
    """Convenience constructor: a fully-armed recording telemetry."""
    return Telemetry(
        trace=InMemoryRecorder() if trace else None,
        metrics=MetricsRegistry() if metrics else None,
        profiler=Profiler() if profile else None,
        series=SeriesBank() if series else None,
        sample_every=sample_every,
    )


_current: Telemetry = NULL_TELEMETRY


def get_telemetry() -> Telemetry:
    """The ambient telemetry (``NULL_TELEMETRY`` unless installed)."""
    return _current


def set_telemetry(telemetry: Optional[Telemetry]) -> None:
    """Install *telemetry* as the ambient default (None resets)."""
    global _current
    _current = telemetry if telemetry is not None else NULL_TELEMETRY


@contextmanager
def use(telemetry: Telemetry):
    """Scope *telemetry* as the ambient default within a ``with`` block."""
    global _current
    previous = _current
    _current = telemetry
    try:
        yield telemetry
    finally:
        _current = previous
