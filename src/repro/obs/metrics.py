"""Live metrics registry: counters, gauges, and histograms.

Instruments are created lazily by name through a
:class:`MetricsRegistry` (``registry.counter("sim.events_processed")``)
and updated in place on hot paths, so an update is one attribute
assignment — no locks, no label hashing, no allocation.  Names are
hierarchical dotted strings (``layer.metric``); the registry serializes
to a flat JSON-ready dict for ``--metrics-out``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "estimate_bucket_quantiles",
    "QUANTILE_POINTS",
]


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-set value plus its high-water mark."""

    __slots__ = ("name", "value", "high")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.high = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high:
            self.high = value

    def reset(self) -> None:
        self.value = 0.0
        self.high = 0.0

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value, "high": self.high}


#: Default histogram bucket upper bounds — roughly geometric, wide enough
#: for times, sizes, and scores alike.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.01, 0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 5000.0,
)


class Histogram:
    """Bucketed distribution with exact count/sum/min/max.

    ``buckets`` are upper bounds; an implicit ``+inf`` bucket catches the
    tail, so ``sum(bucket_counts) == count`` always holds.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be sorted ascending")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for the +inf tail
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def to_dict(self) -> dict:
        buckets = {
            **{str(b): c for b, c in zip(self.bounds, self.counts)},
            "+inf": self.counts[-1],
        }
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "buckets": buckets,
            "quantiles": estimate_bucket_quantiles(
                buckets,
                self.count,
                lo=self.min if self.count else None,
                hi=self.max if self.count else None,
            ),
        }


#: Quantile points estimated for every histogram snapshot.
QUANTILE_POINTS: Tuple[float, ...] = (0.5, 0.9, 0.99)


def estimate_bucket_quantiles(
    buckets: Dict[str, int],
    count: int,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
    points: Sequence[float] = QUANTILE_POINTS,
) -> Optional[dict]:
    """Estimate quantiles from bucket counts by linear interpolation.

    *buckets* is the ``to_dict`` form — upper bounds (as strings) in
    ascending order plus a ``"+inf"`` tail.  Within the bucket holding a
    quantile's rank, the value is interpolated linearly between the
    bucket's edges; the observed ``lo``/``hi`` clamp the open-ended
    first and last buckets (and the estimate overall) to the true data
    range.  Returns ``None`` for an empty histogram.

    Shared by :meth:`Histogram.to_dict` and the campaign metrics merge
    (:func:`repro.parallel.merge.merge_metrics_dicts`), so merged
    snapshots re-estimate quantiles from the folded buckets instead of
    carrying a stale per-worker value.
    """
    if count <= 0:
        return None
    bounds = [float(k) if k != "+inf" else math.inf for k in buckets]
    tallies = list(buckets.values())
    out = {}
    for q in points:
        target = q * count
        cumulative = 0
        value = hi if hi is not None else bounds[-2] if len(bounds) > 1 else 0.0
        for i, (bound, tally) in enumerate(zip(bounds, tallies)):
            if tally == 0:
                continue
            if cumulative + tally >= target:
                lower = bounds[i - 1] if i > 0 else (lo if lo is not None else 0.0)
                if math.isinf(bound):
                    # The +inf tail has no upper edge to interpolate
                    # toward; the observed max is the best estimate.
                    value = hi if hi is not None else lower
                else:
                    fraction = (target - cumulative) / tally
                    value = lower + (bound - lower) * fraction
                break
            cumulative += tally
        if lo is not None and value < lo:
            value = lo
        if hi is not None and value > hi:
            value = hi
        out[f"p{int(q * 100)}"] = value
    return out


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Name-keyed store of instruments with get-or-create accessors."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    def _get(self, name: str, cls, *args) -> Instrument:
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name, *args)
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        return self._get(name, Histogram, buckets)

    def get(self, name: str) -> Optional[Instrument]:
        """The instrument registered under *name*, if any."""
        return self._instruments.get(name)

    def clear(self) -> None:
        """Drop every instrument (names and values).

        Callers holding instrument references keep stale objects; prefer
        :meth:`reset` when hot paths have cached the instruments.
        """
        self._instruments.clear()

    def reset(self) -> None:
        """Zero every instrument in place, keeping registrations.

        The reuse hook for running several experiments through one
        registry in one process: cached instrument references (the sim
        kernel binds its counter once per Environment) stay valid.
        """
        for inst in self._instruments.values():
            inst.reset()

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[Instrument]:
        for name in self.names():
            yield self._instruments[name]

    def as_dict(self) -> dict:
        """Flat ``{name: instrument.to_dict()}`` snapshot (JSON-ready)."""
        return {name: self._instruments[name].to_dict() for name in self.names()}
