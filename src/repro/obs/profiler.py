"""Wall-clock profiling hooks for the scheduler hot paths.

A :class:`Profiler` accumulates named spans measured with
``time.perf_counter``.  Instrumented code uses the paired
``start()``/``stop(name, t0)`` form on hot paths (two attribute-guarded
calls, no context-manager allocation) or the :meth:`span` context
manager where ergonomics matter more than nanoseconds.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict

__all__ = ["Profiler", "SpanStats"]


class SpanStats:
    """Aggregate wall-time statistics for one named span."""

    __slots__ = ("name", "count", "total_s", "max_s")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "max_s": self.max_s,
        }


class Profiler:
    """Accumulates perf_counter spans by name."""

    def __init__(self) -> None:
        self._spans: Dict[str, SpanStats] = {}

    # -- hot-path API ------------------------------------------------------
    @staticmethod
    def start() -> float:
        """Timestamp the start of a span."""
        return perf_counter()

    def stop(self, name: str, t0: float) -> float:
        """Close the span opened at *t0*; returns its duration."""
        elapsed = perf_counter() - t0
        self.add(name, elapsed)
        return elapsed

    def add(self, name: str, elapsed_s: float) -> None:
        """Credit *elapsed_s* seconds to span *name*."""
        stats = self._spans.get(name)
        if stats is None:
            stats = SpanStats(name)
            self._spans[name] = stats
        stats.count += 1
        stats.total_s += elapsed_s
        if elapsed_s > stats.max_s:
            stats.max_s = elapsed_s

    # -- convenience API ---------------------------------------------------
    @contextmanager
    def span(self, name: str):
        """``with profiler.span("phase"):`` timing block."""
        t0 = perf_counter()
        try:
            yield
        finally:
            self.add(name, perf_counter() - t0)

    # -- reporting ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._spans)

    def get(self, name: str) -> SpanStats | None:
        return self._spans.get(name)

    def report(self) -> dict:
        """``{span: {count, total_s, mean_s, max_s}}``, total-descending."""
        ordered = sorted(
            self._spans.values(), key=lambda s: s.total_s, reverse=True
        )
        return {s.name: s.to_dict() for s in ordered}

    def render(self) -> str:
        """Human-readable table of the report."""
        if not self._spans:
            return "profile: no spans recorded"
        rows = [("span", "count", "total", "mean", "max")]
        for name, d in self.report().items():
            rows.append(
                (
                    name,
                    str(d["count"]),
                    f"{d['total_s']:.4f}s",
                    f"{d['mean_s'] * 1e3:.3f}ms",
                    f"{d['max_s'] * 1e3:.3f}ms",
                )
            )
        widths = [max(len(r[i]) for r in rows) for i in range(5)]
        lines = []
        for i, row in enumerate(rows):
            lines.append(
                "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
            )
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)
