"""Prometheus-style text exposition of the metrics registry.

:func:`render_prometheus` serializes a
:class:`~repro.obs.metrics.MetricsRegistry` (or its ``as_dict`` form)
into the Prometheus text format — ``# TYPE`` headers, cumulative
``_bucket{le="..."}`` histogram samples, ``_sum``/``_count`` — so any
scrape-format consumer can ingest a run's metrics without dependencies.
:func:`parse_prometheus` reads the format back (round-trip tested), and
:func:`check_exposition` is the schema validator CI runs.

For long runs, :class:`MetricsServer` exposes the *live* telemetry over
``http.server`` (stdlib only): ``/metrics`` (exposition text),
``/series.json`` (flight-recorder bank), and ``/dashboard`` (the
self-contained HTML report).  Wired to ``--serve-metrics PORT`` in the
experiments CLI.

The module doubles as the CI schema checker::

    PYTHONPATH=src python -m repro.obs.exposition out.prom --check
"""

from __future__ import annotations

import json
import math
import re
import threading
from typing import Dict, List, Optional, Union

from .metrics import MetricsRegistry

__all__ = [
    "render_prometheus",
    "parse_prometheus",
    "check_exposition",
    "MetricsServer",
]

#: Characters legal in a Prometheus metric name; everything else (the
#: registry's dots in particular) maps to ``_``.
_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)


def metric_name(name: str, prefix: str = "repro_") -> str:
    """The registry's dotted *name* as a Prometheus metric name."""
    return prefix + _NAME_SANITIZE.sub("_", name)


def _fmt(value: float) -> str:
    if value != value:  # pragma: no cover - NaN never emitted today
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(
    metrics: Union[MetricsRegistry, dict], prefix: str = "repro_"
) -> str:
    """Serialize *metrics* to Prometheus exposition text.

    Accepts a live registry or its ``as_dict()`` snapshot (the form the
    campaign merge produces), so a merged ``metrics.json`` can be
    re-exposed unchanged.
    """
    snapshot = (
        metrics.as_dict() if isinstance(metrics, MetricsRegistry) else metrics
    )
    lines: List[str] = []
    for name in sorted(snapshot):
        inst = snapshot[name]
        kind = inst["type"]
        pname = metric_name(name, prefix)
        if kind == "counter":
            lines.append(f"# TYPE {pname} counter")
            lines.append(f"{pname} {_fmt(inst['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_fmt(inst['value'])}")
            lines.append(f"# TYPE {pname}_high gauge")
            lines.append(f"{pname}_high {_fmt(inst['high'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {pname} histogram")
            cumulative = 0
            for bound, count in inst["buckets"].items():
                cumulative += count
                le = "+Inf" if bound == "+inf" else bound
                lines.append(f'{pname}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f"{pname}_sum {_fmt(inst['sum'])}")
            lines.append(f"{pname}_count {inst['count']}")
        else:
            raise ValueError(f"metric {name!r} has unknown type {kind!r}")
    return "\n".join(lines) + "\n" if lines else ""


def parse_prometheus(text: str) -> Dict[str, dict]:
    """Parse exposition *text* back into ``{family: {type, samples}}``.

    ``samples`` maps ``name{labels}`` (the raw sample key) to the float
    value.  Strict enough for the round-trip tests and the CI checker;
    not a general scrape parser.
    """
    families: Dict[str, dict] = {}
    declared: Dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                declared[parts[2]] = parts[3]
                families.setdefault(
                    parts[2], {"type": parts[3], "samples": {}}
                )
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparseable sample {line!r}")
        name = match.group("name")
        labels = match.group("labels")
        key = name if labels is None else f"{name}{{{labels}}}"
        value_text = match.group("value")
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        else:
            value = float(value_text)
        # A histogram's _bucket/_sum/_count samples belong to the base
        # family; other suffixes are their own families.
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and declared.get(base) == "histogram":
                family = base
                break
        families.setdefault(
            family, {"type": declared.get(family, "untyped"), "samples": {}}
        )["samples"][key] = value
    return families


def check_exposition(text: str) -> List[str]:
    """Validate exposition *text*; returns human-readable failures.

    Checks (empty list = pass):

    - every sample's family carries a ``# TYPE`` declaration;
    - counter and ``_count`` samples are non-negative;
    - histogram buckets are cumulative (non-decreasing in ``le`` order),
      end with ``le="+Inf"``, and the ``+Inf`` bucket equals ``_count``;
    - every histogram has exactly one ``_sum`` and one ``_count``.
    """
    failures: List[str] = []
    try:
        families = parse_prometheus(text)
    except ValueError as exc:
        return [str(exc)]
    if not families:
        return ["no metric families found"]
    for family, data in sorted(families.items()):
        kind = data["type"]
        samples = data["samples"]
        if kind == "untyped":
            failures.append(f"{family}: sample without a # TYPE declaration")
            continue
        if kind == "counter":
            for key, value in samples.items():
                if value < 0:
                    failures.append(f"{key}: negative counter value {value}")
        elif kind == "histogram":
            buckets = [
                (key, value)
                for key, value in samples.items()
                if key.startswith(f"{family}_bucket{{")
            ]
            counts = [k for k in samples if k == f"{family}_count"]
            sums = [k for k in samples if k == f"{family}_sum"]
            if len(counts) != 1 or len(sums) != 1:
                failures.append(
                    f"{family}: expected exactly one _sum and one _count"
                )
                continue
            if not buckets:
                failures.append(f"{family}: histogram without buckets")
                continue
            values = [v for _, v in buckets]
            if any(b > a for b, a in zip(values, values[1:])):
                failures.append(f"{family}: bucket counts are not cumulative")
            last_key, last_value = buckets[-1]
            if 'le="+Inf"' not in last_key:
                failures.append(f"{family}: buckets do not end with le=\"+Inf\"")
            elif last_value != samples[f"{family}_count"]:
                failures.append(
                    f"{family}: +Inf bucket {last_value} != _count "
                    f"{samples[f'{family}_count']}"
                )
    return failures


class MetricsServer:
    """Zero-dependency live telemetry endpoint over ``http.server``.

    Serves the *current* state of a :class:`~repro.obs.Telemetry` on
    every request — scrape ``/metrics`` mid-run to watch a long
    experiment converge.  ``port=0`` binds an ephemeral port (read it
    back from :attr:`port`).  The server thread is a daemon; call
    :meth:`stop` for an orderly shutdown.
    """

    def __init__(self, telemetry, port: int = 0, host: str = "127.0.0.1"):
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        tel = telemetry

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path == "/metrics":
                    if tel.metering:
                        body = render_prometheus(tel.metrics)
                    else:
                        body = ""
                    self._send(body or "# no metrics registry armed\n",
                               "text/plain; version=0.0.4")
                elif self.path == "/series.json":
                    bank = tel.series
                    payload = bank.as_dict() if bank is not None else {}
                    self._send(json.dumps(payload), "application/json")
                elif self.path in ("/", "/dashboard"):
                    from .dashboard import render_dashboard

                    self._send(
                        render_dashboard(
                            tel.series,
                            metrics=tel.metrics,
                            title="Live run dashboard",
                        ),
                        "text/html; charset=utf-8",
                    )
                else:
                    self.send_error(404)

            def _send(self, body: str, content_type: str) -> None:
                data = body.encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            def log_message(self, *args) -> None:  # pragma: no cover
                pass  # keep scrapes out of the experiment's stdout

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._thread: Optional[threading.Thread] = None
        self._stopped = False

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    def start(self) -> "MetricsServer":
        """Serve in a daemon thread.  A stopped server cannot restart —
        :meth:`stop` closes the listening socket, so create a new
        :class:`MetricsServer` instead."""
        if self._stopped:
            raise RuntimeError(
                "MetricsServer was stopped; its socket is closed — "
                "create a new MetricsServer to serve again"
            )
        if self._thread is not None:
            raise RuntimeError("MetricsServer is already running")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down and close the socket.  Idempotent: drain paths and
        ``finally`` blocks may both call it."""
        if self._stopped:
            return
        self._stopped = True
        if self._thread is not None:
            # shutdown() blocks on serve_forever()'s loop exit, so it
            # must only run once the serve thread actually started.
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


def _main(argv: Optional[List[str]] = None) -> int:
    """CLI schema checker: validate a file (or stdin) of exposition text."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="Validate Prometheus exposition text "
        "(repro.obs schema checker)."
    )
    parser.add_argument("file", help="exposition text file, or - for stdin")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on any schema failure (default behaviour; "
        "kept for CI readability)",
    )
    args = parser.parse_args(argv)
    if args.file == "-":
        text = sys.stdin.read()
    else:
        with open(args.file, "r", encoding="utf-8") as fh:
            text = fh.read()
    failures = check_exposition(text)
    families = 0 if failures else len(parse_prometheus(text))
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"ok: {families} metric families validated")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(_main())
