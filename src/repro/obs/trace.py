"""Trace recorders and trace-file formats.

A recorder receives :class:`~repro.obs.events.TraceEvent` emissions from
instrumented code.  The default :class:`NullRecorder` discards them with
a no-op ``emit`` (its ``active`` flag lets hot paths skip even building
the event), while :class:`InMemoryRecorder` buffers them for export.

Two on-disk formats are supported:

- **JSONL** (:func:`save_jsonl` / :func:`load_jsonl`): one event per
  line, lossless round-trip through the obs API.
- **Chrome trace** (:func:`export_chrome_trace`): the ``traceEvents``
  JSON consumed by ``chrome://tracing`` / Perfetto.  Events map to
  instant events (``ph: "i"``) on one thread-row per category; simulated
  time maps to microseconds at 1 sim-time-unit = 1 ms so sweeps of a few
  thousand time units render comfortably.
"""

from __future__ import annotations

import json
from itertools import count
from pathlib import Path
from typing import Callable, Iterable, Optional, Union

from .events import CATEGORIES, TraceEvent

__all__ = [
    "TraceRecorder",
    "NullRecorder",
    "InMemoryRecorder",
    "save_jsonl",
    "load_jsonl",
    "export_chrome_trace",
]

#: Chrome-trace timestamps are integer microseconds; render one simulated
#: time unit as one millisecond.
_CHROME_US_PER_SIM_UNIT = 1000.0


class TraceRecorder:
    """Recorder interface; the base class is itself the null recorder."""

    #: False means emissions are discarded — instrumented code guards
    #: event construction on this flag, keeping disabled runs free.
    active: bool = False

    def emit(self, category: str, name: str, t: float, **fields) -> None:
        """Record one event (no-op on the null recorder)."""

    def events(self) -> list[TraceEvent]:
        """Every recorded event in emission order."""
        return []

    def __len__(self) -> int:
        return 0


class NullRecorder(TraceRecorder):
    """Discards every emission (the default recorder)."""


class InMemoryRecorder(TraceRecorder):
    """Buffers events in memory for later filtering and export."""

    active = True

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []
        self._seq = count()

    def emit(self, category: str, name: str, t: float, **fields) -> None:
        self._events.append(
            TraceEvent(category, name, t, fields, next(self._seq))
        )

    def events(self) -> list[TraceEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def filter(
        self,
        category: Optional[str] = None,
        name: Optional[str] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> list[TraceEvent]:
        """Events matching every given criterion, in emission order."""
        out = []
        for ev in self._events:
            if category is not None and ev.category != category:
                continue
            if name is not None and ev.name != name:
                continue
            if predicate is not None and not predicate(ev):
                continue
            out.append(ev)
        return out

    def categories(self) -> set[str]:
        """Distinct categories seen so far."""
        return {ev.category for ev in self._events}


def save_jsonl(
    events: Iterable[TraceEvent], path: Union[str, Path]
) -> int:
    """Write *events* to *path* as JSON Lines; returns the event count."""
    n = 0
    with Path(path).open("w", encoding="utf-8") as fh:
        for ev in events:
            fh.write(json.dumps(ev.to_dict(), separators=(",", ":")))
            fh.write("\n")
            n += 1
    return n


def load_jsonl(path: Union[str, Path]) -> list[TraceEvent]:
    """Load a :func:`save_jsonl` file back into events (blank-line safe)."""
    out = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(TraceEvent.from_dict(json.loads(line)))
    return out


def export_chrome_trace(
    events: Iterable[TraceEvent], path: Union[str, Path, None] = None
) -> dict:
    """Convert *events* to the Chrome trace-event JSON object.

    Returns the trace dict; with *path* given, also writes it.  Each
    category gets its own thread row (``tid``) so the timeline groups
    related events; payload fields land in ``args``.
    """
    tids = {cat: i + 1 for i, cat in enumerate(CATEGORIES)}
    trace_events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro simulation"},
        }
    ]
    for cat, tid in tids.items():
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": cat},
            }
        )
    for ev in events:
        tid = tids.get(ev.category)
        if tid is None:  # unknown category: give it a row past the known ones
            tid = tids[ev.category] = len(tids) + 1
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": ev.category},
                }
            )
        trace_events.append(
            {
                "name": f"{ev.category}.{ev.name}",
                "cat": ev.category,
                "ph": "i",
                "s": "t",
                "ts": ev.t * _CHROME_US_PER_SIM_UNIT,
                "pid": 1,
                "tid": tid,
                "args": dict(ev.fields),
            }
        )
    trace = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    if path is not None:
        Path(path).write_text(json.dumps(trace), encoding="utf-8")
    return trace
