"""Flight recorder: columnar ring-buffer time series and the kernel sampler.

A :class:`TimeSeries` is a preallocated pair of float64 columns (time,
value) written ring-buffer style, so a sampler can append forever in
O(1) without ever growing memory — once capacity is reached the oldest
points fall off and ``dropped`` counts them.  A :class:`SeriesBank` is
the name-keyed collection carried by :class:`~repro.obs.Telemetry`
(``tel.series``) for one run or one merged campaign.

The :class:`PeriodicSampler` drives collection *inside* the simulation:
it schedules itself as a plain kernel timeout every ``every`` simulated
time units and invokes its probes.  Probes only **read** state (system
power, queue depths, scheduler aggregates, RL internals) and never touch
an RNG stream, so attaching a sampler shifts event insertion ids but
leaves the physics — and therefore the golden-seed digests — bit
identical (pinned by ``tests/obs/test_sampler_determinism.py``).
"""

from __future__ import annotations

import time as _time
from typing import Callable, Dict, Iterator, List, Optional, Sequence

import numpy as np

__all__ = [
    "TimeSeries",
    "SeriesBank",
    "PeriodicSampler",
    "make_run_probes",
    "DEFAULT_SAMPLE_EVERY",
    "DEFAULT_SERIES_CAPACITY",
]

#: Default sampling cadence in simulated time units.  The paper-scale
#: runs span thousands of time units, so this yields O(100) points per
#: series — dense enough for convergence curves, sparse enough that the
#: sampler is invisible next to the per-task event traffic.
DEFAULT_SAMPLE_EVERY = 50.0

#: Default ring capacity per series (points, not bytes).
DEFAULT_SERIES_CAPACITY = 4096


class TimeSeries:
    """Fixed-capacity columnar (t, v) ring buffer."""

    __slots__ = ("name", "capacity", "_t", "_v", "_total", "_extra_dropped")

    def __init__(
        self, name: str, capacity: int = DEFAULT_SERIES_CAPACITY
    ) -> None:
        if capacity <= 0:
            raise ValueError("series capacity must be positive")
        self.name = name
        self.capacity = capacity
        self._t = np.empty(capacity, dtype=np.float64)
        self._v = np.empty(capacity, dtype=np.float64)
        #: Points ever appended; the write cursor is ``_total % capacity``.
        self._total = 0
        #: Drops inherited from a restore/merge (points long gone).
        self._extra_dropped = 0

    def append(self, t: float, value: float) -> None:
        """Record one sample (overwrites the oldest once at capacity)."""
        slot = self._total % self.capacity
        self._t[slot] = t
        self._v[slot] = value
        self._total += 1

    def __len__(self) -> int:
        return min(self._total, self.capacity)

    @property
    def dropped(self) -> int:
        """Samples overwritten by ring wraparound (restores included)."""
        return max(0, self._total - self.capacity) + self._extra_dropped

    def _order(self) -> slice | np.ndarray:
        n = len(self)
        if self._total <= self.capacity:
            return slice(0, n)
        head = self._total % self.capacity
        return np.concatenate(
            [np.arange(head, self.capacity), np.arange(0, head)]
        )

    def times(self) -> np.ndarray:
        """Sample times, oldest first (a copy)."""
        return self._t[self._order()].copy()

    def values(self) -> np.ndarray:
        """Sample values, oldest first (a copy)."""
        return self._v[self._order()].copy()

    def last(self) -> Optional[float]:
        """The most recent value, or None when empty."""
        if self._total == 0:
            return None
        return float(self._v[(self._total - 1) % self.capacity])

    def to_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "dropped": self.dropped,
            "t": self.times().tolist(),
            "v": self.values().tolist(),
        }

    @classmethod
    def from_dict(cls, name: str, data: dict) -> "TimeSeries":
        series = cls(name, capacity=int(data["capacity"]))
        for t, v in zip(data["t"], data["v"]):
            series.append(float(t), float(v))
        # Restore the drop count exactly (the points themselves are gone).
        series._extra_dropped = int(data.get("dropped", 0))
        return series

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TimeSeries {self.name!r} n={len(self)} dropped={self.dropped}>"


class SeriesBank:
    """Name-keyed store of :class:`TimeSeries` with get-or-create access."""

    def __init__(self, capacity: int = DEFAULT_SERIES_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("series capacity must be positive")
        self.capacity = capacity
        self._series: Dict[str, TimeSeries] = {}

    def series(self, name: str) -> TimeSeries:
        """The series registered under *name*, created on first use."""
        s = self._series.get(name)
        if s is None:
            s = TimeSeries(name, capacity=self.capacity)
            self._series[name] = s
        return s

    def record(self, name: str, t: float, value: float) -> None:
        """Shorthand for ``bank.series(name).append(t, value)``."""
        self.series(name).append(t, value)

    def get(self, name: str) -> Optional[TimeSeries]:
        return self._series.get(name)

    def names(self) -> List[str]:
        # list() snapshots the dict in one C-level pass so a concurrent
        # first-sample insertion (live /series.json scrape while the
        # service engine records) cannot raise "changed size during
        # iteration" mid-sort.
        return sorted(list(self._series))

    def __len__(self) -> int:
        return len(self._series)

    def __iter__(self) -> Iterator[TimeSeries]:
        for name in self.names():
            yield self._series[name]

    def as_dict(self) -> dict:
        """Flat ``{name: series.to_dict()}`` snapshot (JSON-ready)."""
        return {name: self._series[name].to_dict() for name in self.names()}

    @classmethod
    def from_dict(cls, data: dict) -> "SeriesBank":
        bank = cls()
        for name, payload in data.items():
            bank._series[name] = TimeSeries.from_dict(name, payload)
        return bank

    def merge_from(self, other: "SeriesBank") -> None:
        """Fold *other*'s series into this bank.

        Same-name series interleave their points by sample time (stable:
        existing points win ties), re-ringed at this bank's per-series
        capacity — the view one sampler would have produced had it
        watched both runs.  Drop counts add.
        """
        for theirs in other:
            mine = self._series.get(theirs.name)
            if mine is None:
                self._series[theirs.name] = TimeSeries.from_dict(
                    theirs.name, theirs.to_dict()
                )
                continue
            merged = TimeSeries(mine.name, capacity=mine.capacity)
            points = sorted(
                [
                    *zip(mine.times().tolist(), mine.values().tolist()),
                    *zip(theirs.times().tolist(), theirs.values().tolist()),
                ],
                key=lambda p: p[0],
            )
            for t, v in points:
                merged.append(t, v)
            merged._extra_dropped = mine.dropped + theirs.dropped
            self._series[mine.name] = merged


#: A probe reads simulation state and records samples into the bank.
Probe = Callable[[SeriesBank, float], None]


class PeriodicSampler:
    """Kernel-level periodic sampler driving a set of read-only probes.

    Parameters
    ----------
    bank:
        Destination :class:`SeriesBank`.
    every:
        Sampling cadence in simulated time units.
    until:
        Horizon after which the sampler stops rescheduling itself.
        Without it the self-rescheduling timeout would keep the event
        queue non-empty forever, so it is required.
    """

    def __init__(
        self,
        bank: SeriesBank,
        every: float = DEFAULT_SAMPLE_EVERY,
        until: float = 0.0,
        probes: Sequence[Probe] = (),
    ) -> None:
        if every <= 0:
            raise ValueError("sampling cadence must be positive")
        self.bank = bank
        self.every = every
        self.until = until
        self.probes: List[Probe] = list(probes)
        self.samples = 0
        self._env = None

    def add_probe(self, probe: Probe) -> None:
        self.probes.append(probe)

    def attach(self, env) -> "PeriodicSampler":
        """Start sampling on *env* (first tick one cadence from now)."""
        self._env = env
        if env.now + self.every <= self.until:
            env.timeout(self.every).callbacks.append(self._tick)
        return self

    def _tick(self, _event) -> None:
        env = self._env
        now = env.now
        self.samples += 1
        for probe in self.probes:
            probe(self.bank, now)
        if now + self.every <= self.until:
            env.timeout(self.every).callbacks.append(self._tick)


class _SystemProbe:
    """Per-sample platform readings: power, queues, node/processor states."""

    def __init__(self, system, scheduler, env) -> None:
        self._system = system
        self._scheduler = scheduler
        self._env = env
        self._last_events = 0.0
        self._last_wall = _time.perf_counter()

    def __call__(self, bank: SeriesBank, now: float) -> None:
        system = self._system
        total_power = 0.0
        for site in system.sites:
            site_power = sum(s.total_power_w for s in site.states())
            bank.record(f"power.site.{site.site_id}", now, site_power)
            total_power += site_power
        bank.record("power.system", now, total_power)

        pending = 0
        free_slots = 0
        sleeping = 0
        failed = 0
        for node in system.nodes:
            pending += node.pending_tasks
            free_slots += node.free_slots
            sleeping += node.sleeping_processors
            if node.failed:
                failed += 1
        bank.record("queue.pending_tasks", now, pending)
        bank.record("queue.free_slots", now, free_slots)
        busy = system.busy_processors()
        bank.record("procs.busy", now, busy)
        bank.record("procs.sleeping", now, sleeping)
        bank.record(
            "procs.idle", now, system.num_processors - busy - sleeping
        )
        bank.record("nodes.failed", now, failed)

        sched = self._scheduler
        stream = getattr(sched, "stream", None)
        if stream is not None:
            completed = stream.completed
            hit_rate = stream.hits / completed if completed else 0.0
            bank.record("sched.completed", now, completed)
            bank.record("sched.success_rate", now, hit_rate)
            bank.record(
                "sched.miss_rate", now, 1.0 - hit_rate if completed else 0.0
            )
        backlog = getattr(sched, "total_backlog", None)
        if backlog is not None:
            bank.record("sched.backlog", now, backlog)

        events = self._env.events_processed
        if events is not None:
            wall = _time.perf_counter()
            dt = wall - self._last_wall
            bank.record("sim.events", now, events)
            bank.record(
                "sim.events_per_sec",
                now,
                (events - self._last_events) / dt if dt > 0 else 0.0,
            )
            self._last_events = events
            self._last_wall = wall


def make_run_probes(system, scheduler, env) -> List[Probe]:
    """The standard probe set for one experiment run.

    Platform/scheduler readings always; the RL convergence probe joins
    when the scheduler carries learning agents (duck-typed, so baselines
    sample cleanly without it).
    """
    probes: List[Probe] = [_SystemProbe(system, scheduler, env)]
    if getattr(scheduler, "agents", None):
        from .convergence import ConvergenceProbes

        probes.append(ConvergenceProbes(scheduler))
    return probes
