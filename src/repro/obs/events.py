"""Typed trace events — the vocabulary of the telemetry layer.

Every instrumented point in the codebase emits a :class:`TraceEvent`
with a *category* (which subsystem), a *name* (what happened), the
simulated time ``t``, and free-form ``fields``.  The taxonomy is
deliberately small and stable — tools (JSONL export, Chrome-trace
export, assertions in tests) key off ``(category, name)`` pairs:

========  ==============================  =====================================
category  names                           emitted by
========  ==============================  =====================================
run       start, end                      ``experiments.runner``
task      submit, complete, resubmit      arrival process / scheduler base
group     merge, dispatch, complete       ``core.agent``
rl        action, reward, regression      ``core.agent`` (ε-greedy + Eqs. 7–9)
memory    seed, override                  ``core.agent`` (shared memory, §IV.C)
energy    state, dvfs                     ``energy.meter`` / ``core.dvfs``
node      fail, repair                    ``cluster.failures``
audit     <invariant name>                ``validate.auditor`` (strict mode)
========  ==============================  =====================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "TraceEvent",
    "CATEGORIES",
    "CAT_RUN",
    "CAT_TASK",
    "CAT_GROUP",
    "CAT_RL",
    "CAT_MEMORY",
    "CAT_ENERGY",
    "CAT_NODE",
    "CAT_AUDIT",
]

CAT_RUN = "run"
CAT_TASK = "task"
CAT_GROUP = "group"
CAT_RL = "rl"
CAT_MEMORY = "memory"
CAT_ENERGY = "energy"
CAT_NODE = "node"
CAT_AUDIT = "audit"

#: Every category the instrumented codebase emits.
CATEGORIES = (
    CAT_RUN,
    CAT_TASK,
    CAT_GROUP,
    CAT_RL,
    CAT_MEMORY,
    CAT_ENERGY,
    CAT_NODE,
    CAT_AUDIT,
)


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped occurrence inside a simulation run.

    Parameters
    ----------
    category:
        Subsystem taxonomy bucket (see module docstring).
    name:
        What happened within the category (e.g. ``"dispatch"``).
    t:
        Simulated time of the occurrence.
    fields:
        Structured payload — JSON-serializable scalars only.
    seq:
        Recorder-assigned monotone sequence number; breaks ties between
        events at the same simulated time, preserving causal order.
    """

    category: str
    name: str
    t: float
    fields: Mapping[str, Any] = field(default_factory=dict)
    seq: int = 0

    def to_dict(self) -> dict:
        """Flat JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {
            "cat": self.category,
            "name": self.name,
            "t": self.t,
            "seq": self.seq,
            "fields": dict(self.fields),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceEvent":
        """Rebuild an event from :meth:`to_dict` output."""
        return cls(
            category=data["cat"],
            name=data["name"],
            t=float(data["t"]),
            fields=dict(data.get("fields", {})),
            seq=int(data.get("seq", 0)),
        )
