"""Self-contained HTML dashboard rendered from a flight-recorder bank.

:func:`render_dashboard` turns a :class:`~repro.obs.timeseries.SeriesBank`
(one run's, or a campaign's merged bank) into a single HTML file with no
external assets: KPI stat tiles, inline-SVG line charts for the platform
and RL-convergence series, and a small-multiples grid for everything
else.  Open it from disk, attach it to CI, or fetch it live from
``/dashboard`` on the :class:`~repro.obs.exposition.MetricsServer`.

Chart conventions (one axis per chart, 2px lines, hairline gridlines,
recessive axes, categorical hues in fixed order, text in ink tokens,
legend for multi-series charts, light/dark via CSS custom properties
honouring ``prefers-color-scheme`` and a ``data-theme`` override) follow
the repo's report style; the palette is embedded below so the file stays
dependency-free.
"""

from __future__ import annotations

import html
import json
from typing import List, Optional, Sequence, Tuple

from .timeseries import SeriesBank

__all__ = ["render_dashboard"]

#: Max polyline points per series; denser series are strided down.
_MAX_POINTS = 800

# Plot geometry (viewBox units).
_W, _H = 640, 220
_ML, _MR, _MT, _MB = 52, 14, 12, 26
_SPARK_W, _SPARK_H = 120, 30

_CSS = """
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --ink-1: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a; --s4: #eda100;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--ink-1);
  margin: 0; padding: 24px;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835;
    --border: rgba(255,255,255,0.10);
    --s1: #3987e5; --s2: #d95926; --s3: #199e70; --s4: #c98500;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19; --page: #0d0d0d;
  --ink-1: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
  --grid: #2c2c2a; --axis: #383835;
  --border: rgba(255,255,255,0.10);
  --s1: #3987e5; --s2: #d95926; --s3: #199e70; --s4: #c98500;
}
.viz-root h1 { font-size: 20px; margin: 0 0 2px; }
.viz-root .sub { color: var(--ink-2); font-size: 13px; margin: 0 0 18px; }
.viz-root .tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 0 0 18px; }
.viz-root .tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 150px;
}
.viz-root .tile .label { color: var(--ink-2); font-size: 12px; }
.viz-root .tile .value { font-size: 28px; margin: 2px 0 4px; }
.viz-root .tile .delta { color: var(--ink-2); font-size: 12px; }
.viz-root .charts { display: grid; gap: 14px;
  grid-template-columns: repeat(auto-fill, minmax(420px, 1fr)); }
.viz-root .card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 14px 16px; position: relative;
}
.viz-root .card h2 { font-size: 14px; margin: 0 0 2px; }
.viz-root .card .unit { color: var(--muted); font-size: 12px; margin: 0 0 6px; }
.viz-root .legend { display: flex; flex-wrap: wrap; gap: 12px;
  font-size: 12px; color: var(--ink-2); margin: 0 0 4px; }
.viz-root .legend .chip { display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 5px; vertical-align: -1px; }
.viz-root svg { display: block; width: 100%; height: auto; }
.viz-root .grid-line { stroke: var(--grid); stroke-width: 1; }
.viz-root .axis-line { stroke: var(--axis); stroke-width: 1; }
.viz-root .tick { fill: var(--muted); font-size: 10px; }
.viz-root .dlabel { fill: var(--ink-2); font-size: 10px; }
.viz-root .mini { display: grid; gap: 12px;
  grid-template-columns: repeat(auto-fill, minmax(200px, 1fr)); }
.viz-root .mini .name { color: var(--ink-2); font-size: 12px;
  overflow: hidden; text-overflow: ellipsis; white-space: nowrap; }
.viz-root .crosshair { stroke: var(--axis); stroke-width: 1; opacity: 0; }
.viz-root .tip { position: absolute; pointer-events: none; display: none;
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 6px; padding: 6px 9px; font-size: 12px; color: var(--ink-2);
  box-shadow: 0 2px 8px rgba(0,0,0,0.12); z-index: 2; }
.viz-root .tip b { color: var(--ink-1); font-weight: 600; }
.viz-root footer { color: var(--muted); font-size: 12px; margin-top: 18px; }
"""

_JS = """
(function () {
  function fmt(v) {
    if (!isFinite(v)) return String(v);
    if (Math.abs(v) >= 1000) return v.toLocaleString(undefined, {maximumFractionDigits: 0});
    return Number(v.toPrecision(4)).toString();
  }
  document.querySelectorAll('[data-chart]').forEach(function (card) {
    var svg = card.querySelector('svg');
    var meta = JSON.parse(card.querySelector('script[type="application/json"]').textContent);
    var tip = card.querySelector('.tip');
    var hair = card.querySelector('.crosshair');
    if (!svg || !tip || !hair) return;
    svg.addEventListener('mousemove', function (ev) {
      var box = svg.getBoundingClientRect();
      var sx = meta.w / box.width;
      var px = (ev.clientX - box.left) * sx;
      if (px < meta.x0 || px > meta.x1) { tip.style.display = 'none'; hair.style.opacity = 0; return; }
      var t = meta.t0 + (px - meta.x0) / (meta.x1 - meta.x0) * (meta.t1 - meta.t0);
      var rows = [];
      meta.series.forEach(function (s) {
        if (!s.t.length) return;
        var lo = 0, hi = s.t.length - 1;
        while (hi - lo > 1) { var mid = (lo + hi) >> 1; if (s.t[mid] < t) lo = mid; else hi = mid; }
        var i = (Math.abs(s.t[lo] - t) <= Math.abs(s.t[hi] - t)) ? lo : hi;
        rows.push('<span class="chip" style="background:' + s.color + '"></span>' +
                  s.name + ': <b>' + fmt(s.v[i]) + '</b>');
      });
      if (!rows.length) { tip.style.display = 'none'; hair.style.opacity = 0; return; }
      hair.setAttribute('x1', px); hair.setAttribute('x2', px);
      hair.style.opacity = 1;
      tip.innerHTML = '<div>t = <b>' + fmt(t) + '</b></div><div>' + rows.join('</div><div>') + '</div>';
      tip.style.display = 'block';
      var cardBox = card.getBoundingClientRect();
      var left = ev.clientX - cardBox.left + 14;
      if (left + tip.offsetWidth > cardBox.width - 8) left = left - tip.offsetWidth - 24;
      tip.style.left = left + 'px';
      tip.style.top = (ev.clientY - cardBox.top + 10) + 'px';
    });
    svg.addEventListener('mouseleave', function () {
      tip.style.display = 'none'; hair.style.opacity = 0;
    });
  });
})();
"""


def _fmt_num(value: Optional[float]) -> str:
    if value is None:
        return "—"
    if value != value or value in (float("inf"), float("-inf")):
        return str(value)
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if value == int(value):
        return str(int(value))
    return f"{value:.4g}"


def _stride(values: Sequence[float]) -> List[float]:
    n = len(values)
    if n <= _MAX_POINTS:
        return [float(v) for v in values]
    step = (n - 1) / (_MAX_POINTS - 1)
    return [float(values[round(i * step)]) for i in range(_MAX_POINTS)]


def _nice_ticks(lo: float, hi: float, n: int = 4) -> List[float]:
    if hi <= lo:
        hi = lo + (abs(lo) or 1.0)
    span = hi - lo
    raw = span / n
    mag = 10 ** __import__("math").floor(__import__("math").log10(raw))
    for mult in (1, 2, 2.5, 5, 10):
        if raw <= mult * mag:
            step = mult * mag
            break
    else:  # pragma: no cover - mult=10 always satisfies
        step = 10 * mag
    first = __import__("math").ceil(lo / step) * step
    ticks = []
    t = first
    while t <= hi + 1e-12 * span:
        ticks.append(round(t, 10))
        t += step
    return ticks


class _ChartSeries:
    """One plotted line: strided points plus presentation hints."""

    def __init__(self, name: str, label: str, color: str,
                 t: List[float], v: List[float]) -> None:
        self.name = name
        self.label = label
        self.color = color
        self.t = t
        self.v = v


def _collect(bank: SeriesBank, name: str) -> Optional[Tuple[List[float], List[float]]]:
    series = bank.get(name)
    if series is None or len(series) == 0:
        return None
    return _stride(series.times().tolist()), _stride(series.values().tolist())


def _svg_chart(plotted: List[_ChartSeries], area: bool) -> Tuple[str, dict]:
    """The SVG body plus the hover metadata for one chart."""
    t0 = min(s.t[0] for s in plotted)
    t1 = max(s.t[-1] for s in plotted)
    v_lo = min(min(s.v) for s in plotted)
    v_hi = max(max(s.v) for s in plotted)
    if v_lo > 0 and v_lo < 0.33 * v_hi:
        v_lo = 0.0  # anchor near-zero ranges at the baseline
    if v_hi == v_lo:
        v_hi = v_lo + (abs(v_lo) or 1.0)
    x0, x1 = _ML, _W - _MR
    y0, y1 = _H - _MB, _MT

    def sx(t: float) -> float:
        return x0 + (t - t0) / (t1 - t0) * (x1 - x0) if t1 > t0 else (x0 + x1) / 2

    def sy(v: float) -> float:
        return y0 + (v - v_lo) / (v_hi - v_lo) * (y1 - y0)

    parts = []
    ticks = _nice_ticks(v_lo, v_hi)
    for tick in ticks:
        y = sy(tick)
        parts.append(
            f'<line class="grid-line" x1="{x0}" y1="{y:.1f}" x2="{x1}" y2="{y:.1f}"/>'
        )
        parts.append(
            f'<text class="tick" x="{x0 - 6}" y="{y + 3:.1f}" '
            f'text-anchor="end">{_fmt_num(tick)}</text>'
        )
    parts.append(
        f'<line class="axis-line" x1="{x0}" y1="{y0}" x2="{x1}" y2="{y0}"/>'
    )
    for frac, anchor in ((0.0, "start"), (0.5, "middle"), (1.0, "end")):
        t = t0 + frac * (t1 - t0)
        parts.append(
            f'<text class="tick" x="{sx(t):.1f}" y="{_H - 8}" '
            f'text-anchor="{anchor}">t={_fmt_num(t)}</text>'
        )

    direct_labels = len(plotted) <= 4 and len(plotted) > 1
    for s in plotted:
        pts = " ".join(f"{sx(t):.1f},{sy(v):.1f}" for t, v in zip(s.t, s.v))
        if area and len(plotted) == 1:
            first_x, last_x = sx(s.t[0]), sx(s.t[-1])
            parts.append(
                f'<path d="M{first_x:.1f},{y0} L{pts.replace(" ", " L")} '
                f'L{last_x:.1f},{y0} Z" fill="{s.color}" fill-opacity="0.1" '
                f'stroke="none"/>'
            )
        parts.append(
            f'<polyline points="{pts}" fill="none" stroke="{s.color}" '
            f'stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>'
        )
        if direct_labels:
            parts.append(
                f'<text class="dlabel" x="{min(sx(s.t[-1]) + 4, _W - 2):.1f}" '
                f'y="{sy(s.v[-1]) + 3:.1f}">{html.escape(s.label)}</text>'
            )
    parts.append(
        f'<line class="crosshair" x1="{x0}" y1="{y1}" x2="{x0}" y2="{y0}"/>'
    )
    meta = {
        "w": _W, "x0": x0, "x1": x1, "t0": t0, "t1": t1,
        "series": [
            {"name": s.label, "color": s.color,
             "t": [round(t, 6) for t in s.t],
             "v": [round(v, 6) for v in s.v]}
            for s in plotted
        ],
    }
    svg = (
        f'<svg viewBox="0 0 {_W} {_H}" role="img">' + "".join(parts) + "</svg>"
    )
    return svg, meta


def _chart_card(
    bank: SeriesBank,
    title: str,
    unit: str,
    members: Sequence[Tuple[str, str, str]],
    area: bool = False,
) -> Optional[str]:
    """One chart card; *members* is (series name, label, css color)."""
    plotted = []
    for name, label, color in members:
        data = _collect(bank, name)
        if data is not None:
            plotted.append(_ChartSeries(name, label, color, *data))
    if not plotted:
        return None
    svg, meta = _svg_chart(plotted, area)
    legend = ""
    if len(plotted) > 1:
        legend = '<div class="legend">' + "".join(
            f'<span><span class="chip" style="background:{s.color}"></span>'
            f"{html.escape(s.label)}</span>"
            for s in plotted
        ) + "</div>"
    unit_html = f'<p class="unit">{html.escape(unit)}</p>' if unit else ""
    return (
        '<div class="card" data-chart>'
        f"<h2>{html.escape(title)}</h2>{unit_html}{legend}{svg}"
        f'<script type="application/json">{json.dumps(meta)}</script>'
        '<div class="tip"></div></div>'
    )


def _sparkline(t: List[float], v: List[float], color: str = "var(--s1)") -> str:
    lo, hi = min(v), max(v)
    if hi == lo:
        hi = lo + (abs(lo) or 1.0)
    t0, t1 = t[0], t[-1]
    pts = " ".join(
        "{:.1f},{:.1f}".format(
            2 + (tt - t0) / (t1 - t0) * (_SPARK_W - 4) if t1 > t0 else _SPARK_W / 2,
            (_SPARK_H - 3) - (vv - lo) / (hi - lo) * (_SPARK_H - 6),
        )
        for tt, vv in zip(t, v)
    )
    return (
        f'<svg viewBox="0 0 {_SPARK_W} {_SPARK_H}" role="img">'
        f'<polyline points="{pts}" fill="none" stroke="{color}" '
        f'stroke-width="2" stroke-linejoin="round"/></svg>'
    )


def _tile(bank: SeriesBank, name: str, label: str, fmt=None) -> Optional[str]:
    data = _collect(bank, name)
    if data is None:
        return None
    t, v = data
    value = v[-1]
    shown = fmt(value) if fmt is not None else _fmt_num(value)
    delta = ""
    if len(v) > 1 and v[0] == v[0]:
        change = value - v[0]
        arrow = "&#8593;" if change > 0 else "&#8595;" if change < 0 else "&#8594;"
        delta = f'<div class="delta">{arrow} {_fmt_num(abs(change))} over run</div>'
    return (
        '<div class="tile">'
        f'<div class="label">{html.escape(label)}</div>'
        f'<div class="value">{shown}</div>'
        f"{delta}{_sparkline(t, v)}</div>"
    )


def render_dashboard(
    bank: Optional[SeriesBank],
    metrics=None,
    title: str = "Run dashboard",
    subtitle: Optional[str] = None,
) -> str:
    """Render *bank* as one self-contained HTML page (no external assets).

    *metrics* (a live :class:`~repro.obs.metrics.MetricsRegistry` or its
    dict snapshot) adds an end-of-run instruments table below the charts.
    """
    bank = bank if bank is not None else SeriesBank()

    tiles = [
        t for t in (
            _tile(bank, "sched.success_rate", "Success rate",
                  fmt=lambda v: f"{v * 100:.1f}%"),
            _tile(bank, "power.system", "System power (W)"),
            _tile(bank, "sim.events_per_sec", "Kernel events/sec"),
            _tile(bank, "rl.epsilon.mean", "Exploration ε"),
        ) if t is not None
    ]

    site_names = [n for n in bank.names() if n.startswith("power.site.")]
    power_members = [("power.system", "system", "var(--s1)")] + [
        # Emphasis form: the system total carries the accent; per-site
        # context lines recede into the muted gray.
        (n, n.removeprefix("power.site."), "var(--muted)")
        for n in site_names
    ]
    chart_specs = [
        ("System power draw", "watts (instantaneous)", power_members, False),
        ("Queueing", "tasks", [
            ("queue.pending_tasks", "queued on nodes", "var(--s1)"),
            ("sched.backlog", "scheduler backlog", "var(--s2)"),
        ], False),
        ("Processor states", "processors", [
            ("procs.busy", "busy", "var(--s1)"),
            ("procs.idle", "idle", "var(--s2)"),
            ("procs.sleeping", "sleeping", "var(--s3)"),
        ], False),
        ("Deadline success rate", "fraction of completions", [
            ("sched.success_rate", "success rate", "var(--s1)"),
        ], True),
        ("Q-table update delta", "L2 norm per sample window", [
            ("rl.q_delta_norm", "‖ΔQ‖", "var(--s1)"),
        ], True),
        ("Greedy-policy churn", "states changing action", [
            ("rl.policy_churn", "churn", "var(--s1)"),
        ], True),
        ("Reward per feedback", "windowed mean", [
            ("rl.reward.mean", "reward", "var(--s1)"),
            ("rl.l_val.mean", "learning value", "var(--s2)"),
        ], False),
        ("Shared-memory hit rate", "state-matching queries", [
            ("rl.memory.hit_rate", "hit rate", "var(--s1)"),
        ], True),
    ]
    cards = []
    used = {"sched.miss_rate"}
    for chart_title, unit, members, area in chart_specs:
        card = _chart_card(bank, chart_title, unit, members, area=area)
        if card is not None:
            cards.append(card)
            used.update(name for name, _, _ in members)

    minis = []
    for name in bank.names():
        if name in used:
            continue
        data = _collect(bank, name)
        if data is None:
            continue
        t, v = data
        minis.append(
            '<div class="card"><div class="name" title="{0}">{0}</div>'
            '<div class="value" style="font-size:18px">{1}</div>{2}</div>'.format(
                html.escape(name), _fmt_num(v[-1]), _sparkline(t, v)
            )
        )

    metrics_rows = ""
    if metrics is not None:
        snapshot = metrics if isinstance(metrics, dict) else metrics.as_dict()
        rows = []
        for name in sorted(snapshot):
            inst = snapshot[name]
            if inst["type"] == "histogram":
                shown = (
                    f"n={_fmt_num(inst['count'])} "
                    f"mean={_fmt_num(inst['mean'])}"
                )
            else:
                shown = _fmt_num(inst["value"])
            rows.append(
                f"<tr><td>{html.escape(name)}</td>"
                f"<td>{inst['type']}</td><td>{shown}</td></tr>"
            )
        if rows:
            metrics_rows = (
                '<div class="card" style="margin-top:14px">'
                "<h2>End-of-run instruments</h2>"
                '<table style="font-size:12px;border-collapse:collapse" '
                'cellpadding="4"><thead><tr>'
                '<th align="left">metric</th><th align="left">type</th>'
                '<th align="left">value</th></tr></thead><tbody>'
                + "".join(rows)
                + "</tbody></table></div>"
            )

    n_series = len(bank)
    sub = subtitle or f"{n_series} series recorded by the flight recorder"
    body_main = (
        f'<div class="tiles">{"".join(tiles)}</div>' if tiles else ""
    ) + (
        f'<div class="charts">{"".join(cards)}</div>' if cards else ""
    ) + (
        f'<h2 style="font-size:14px;margin:18px 0 8px">More series</h2>'
        f'<div class="mini">{"".join(minis)}</div>' if minis else ""
    )
    if not body_main:
        body_main = (
            '<div class="card"><p class="unit">No samples recorded — run '
            "with the flight recorder enabled (<code>--sample-every</code> "
            "or <code>--dashboard</code>).</p></div>"
        )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{html.escape(title)}</title>
<style>{_CSS}</style>
</head>
<body class="viz-root">
<h1>{html.escape(title)}</h1>
<p class="sub">{html.escape(sub)}</p>
{body_main}
{metrics_rows}
<footer>Self-contained report rendered by repro.obs.dashboard — no external
assets; dark mode follows the OS or an explicit data-theme attribute.</footer>
<script>{_JS}</script>
</body>
</html>
"""
