"""Observability: structured tracing, live metrics, profiling hooks.

A zero-dependency telemetry layer threaded through the simulation
kernel, the Adaptive-RL core, the energy model, and the experiment
harness.  Everything is off by default (:data:`NULL_TELEMETRY`), so the
instrumented hot paths cost a single boolean check per operation; see
``docs/observability.md`` for the event taxonomy and usage.
"""

from .events import (
    CAT_AUDIT,
    CAT_ENERGY,
    CAT_GROUP,
    CAT_MEMORY,
    CAT_NODE,
    CAT_RL,
    CAT_RUN,
    CAT_TASK,
    CATEGORIES,
    TraceEvent,
)
from .convergence import ConvergenceProbes
from .dashboard import render_dashboard
from .exposition import (
    MetricsServer,
    check_exposition,
    parse_prometheus,
    render_prometheus,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    estimate_bucket_quantiles,
)
from .profiler import Profiler, SpanStats
from .timeseries import (
    DEFAULT_SAMPLE_EVERY,
    PeriodicSampler,
    SeriesBank,
    TimeSeries,
    make_run_probes,
)
from .telemetry import (
    NULL_TELEMETRY,
    Telemetry,
    capture,
    get_telemetry,
    set_telemetry,
    use,
)
from .trace import (
    InMemoryRecorder,
    NullRecorder,
    TraceRecorder,
    export_chrome_trace,
    load_jsonl,
    save_jsonl,
)

__all__ = [
    "TraceEvent",
    "CATEGORIES",
    "CAT_RUN",
    "CAT_TASK",
    "CAT_GROUP",
    "CAT_RL",
    "CAT_MEMORY",
    "CAT_ENERGY",
    "CAT_NODE",
    "CAT_AUDIT",
    "TraceRecorder",
    "NullRecorder",
    "InMemoryRecorder",
    "save_jsonl",
    "load_jsonl",
    "export_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "estimate_bucket_quantiles",
    "Profiler",
    "SpanStats",
    "TimeSeries",
    "SeriesBank",
    "PeriodicSampler",
    "DEFAULT_SAMPLE_EVERY",
    "make_run_probes",
    "ConvergenceProbes",
    "render_prometheus",
    "parse_prometheus",
    "check_exposition",
    "MetricsServer",
    "render_dashboard",
    "Telemetry",
    "NULL_TELEMETRY",
    "capture",
    "get_telemetry",
    "set_telemetry",
    "use",
]
