"""Error taxonomy of the service subsystem."""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ServiceError",
    "ServiceJournalError",
    "AdmissionRejected",
    "ServiceStalled",
    "REASON_QUEUE_FULL",
    "REASON_CLOSED",
    "REASON_SHED",
    "REASON_OUT_OF_ORDER",
    "ADMISSION_REASONS",
]


class ServiceError(RuntimeError):
    """Base class for service-mode failures."""


class ServiceJournalError(ServiceError):
    """The admission journal is corrupt, inconsistent, or misused."""


class ServiceStalled(ServiceError):
    """The drain hit its simulated-time wall before running down."""


#: The ingress queue is at capacity and the policy refuses the task.
REASON_QUEUE_FULL = "queue-full"
#: The ingress is closed (draining/stopped) — nothing is admitted.
REASON_CLOSED = "closed"
#: The shed policy dropped the task as the lowest-priority load.
REASON_SHED = "shed"
#: The task's arrival time precedes an already-admitted arrival.
REASON_OUT_OF_ORDER = "out-of-order"

ADMISSION_REASONS = (
    REASON_QUEUE_FULL,
    REASON_CLOSED,
    REASON_SHED,
    REASON_OUT_OF_ORDER,
)


class AdmissionRejected(ServiceError):
    """A task was refused at the ingress, with a typed *reason*.

    Attributes
    ----------
    reason:
        One of :data:`ADMISSION_REASONS` — machine-checkable, so
        producers can branch on why (back off on ``queue-full``, stop on
        ``closed``, log-and-continue on ``shed``).
    tid:
        The refused task's id (None when the task never carried one).
    """

    def __init__(
        self, reason: str, tid: Optional[int] = None, detail: str = ""
    ) -> None:
        if reason not in ADMISSION_REASONS:
            raise ValueError(f"unknown admission reason {reason!r}")
        self.reason = reason
        self.tid = tid
        what = f"task {tid}" if tid is not None else "task"
        message = f"{what}: admission rejected ({reason})"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
