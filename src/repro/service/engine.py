"""Incremental simulation driver: the batch run, sliced.

The batch harness (:func:`repro.experiments.runner.run_experiment`)
builds the platform, submits a pre-generated workload through an
arrival process, and runs the kernel to completion in one call.  The
:class:`SliceEngine` is the same run decomposed into bounded steps so a
*service* can interleave simulation with admission: each
:meth:`advance` call pops admitted tasks from the ingress up to a
slice target, injects them as arrival-time submissions, and moves the
kernel forward — never past the *admission frontier* (the largest
admitted arrival time) while the stream is open, because simulated
time beyond the frontier could be invalidated by a later admission.

Determinism contract (pinned by ``tests/service/test_parity.py``): for
a fixed admitted task sequence, the sliced run visits the same
trajectory as the batch run — same completions, same energy, same
golden digest — regardless of how the slices are cut.  The mechanism:
``env.run(until=t)`` stops *before* any event scheduled at ``t``, so
injecting a task at its exact arrival epoch is indistinguishable from
the batch arrival process waking at that epoch; slice boundaries add
stop-sentinels that consume event ids uniformly without processing
anything.

Failure injection follows the same frontier rule: the
:class:`~repro.cluster.failures.FailureInjector` draws each node's
fail/repair lifecycle from a per-node RNG substream and only *arms*
transitions up to the engine's kernel cap — the injector's frontier is
advanced immediately before every ``env.run`` call, so no fault is
ever scheduled past simulated time the stream has settled.  At drain
the injector's horizon is fixed to the batch runner's ``time_cap`` and
the clamp semantics apply, making the sliced failure schedule — and
hence crash-resubmission accounting — bitwise identical to a batch run
reaching the same final horizon.
"""

from __future__ import annotations

import time as _time
from typing import List, Optional

from ..cluster.failures import FailureInjector, FailureModel
from ..cluster.system import System, build_system
from ..core.base import Scheduler
from ..experiments.config import ExperimentConfig
from ..experiments.schedulers import make_scheduler
from ..metrics.collector import RunMetrics, collect_metrics
from ..obs import (
    CAT_RUN,
    CAT_TASK,
    Telemetry,
    get_telemetry,
    make_run_probes,
)
from ..sim.core import Environment
from ..sim.events import AnyOf
from ..sim.rng import RandomStreams
from ..validate import AuditReport, InvariantAuditor, strict_mode_enabled
from ..workload.generator import WorkloadSpec
from ..workload.task import Task
from .errors import ServiceError, ServiceStalled
from .ingress import IngressQueue

__all__ = ["SliceEngine", "DEFAULT_SLICE"]

#: Default slice length in simulated time units — a compromise between
#: injection latency (shorter = admitted tasks enter the kernel sooner)
#: and per-slice overhead (each slice costs one stop-sentinel and one
#: ops sample).
DEFAULT_SLICE = 25.0

#: Wall-clock slice-duration histogram buckets (seconds): service
#: slices are milliseconds-scale, far below the metric default buckets.
_SLICE_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


class SliceEngine:
    """Drives one scheduler run in bounded increments.

    Construction mirrors the batch runner exactly — environment, RNG
    streams, platform, scheduler attach, meter/trace wiring — so that
    the physics downstream of admission is shared code, not a parallel
    implementation.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        telemetry: Optional[Telemetry] = None,
        strict: Optional[bool] = None,
    ) -> None:
        self.config = config
        tel = telemetry if telemetry is not None else get_telemetry()
        self.telemetry = tel
        self.env = Environment(telemetry=tel)
        self.streams = RandomStreams(seed=config.seed)
        self.system: System = build_system(self.env, config.platform, self.streams)
        if tel.tracing:
            for proc in self.system.processors:
                proc.meter.bind_telemetry(tel, proc.pid)
            tel.emit(
                CAT_RUN,
                "start",
                self.env.now,
                scheduler=config.scheduler,
                num_tasks=config.num_tasks,
                seed=config.seed,
            )
        self.reference_speed = (
            config.reference_speed_mips
            if config.reference_speed_mips is not None
            else self.system.slowest_speed_mips
        )
        self.scheduler: Scheduler = make_scheduler(
            config.scheduler, **dict(config.scheduler_kwargs)
        )
        self.scheduler.attach(self.env, self.system, self.streams)
        #: Frontier-following failure injector, None when the config
        #: carries no failure model.  Its horizon stays open while the
        #: stream is live; :meth:`drain` fixes it to the batch cap.
        self._failures: Optional[FailureInjector] = None
        if config.failure_mtbf is not None:
            self._failures = FailureInjector(
                self.env,
                self.system.nodes,
                FailureModel(config.failure_mtbf, config.failure_mttr),
                self.streams,
                defer_arming=True,
            )
        strict_on = strict if strict is not None else strict_mode_enabled()
        self.auditor: Optional[InvariantAuditor] = (
            InvariantAuditor(self.env, self.system, self.scheduler)
            if strict_on
            else None
        )
        #: The auditor's findings; set by :meth:`drain` under strict mode.
        self.audit: Optional[AuditReport] = None
        #: Tasks injected into the kernel, in injection (= arrival) order.
        self.injected: List[Task] = []
        #: Final metrics; set by :meth:`drain`, None until then (and
        #: forever when nothing was ever injected).
        self.metrics: Optional[RunMetrics] = None
        self._drained = False
        self._probes = (
            make_run_probes(self.system, self.scheduler, self.env)
            if tel.sampling
            else []
        )
        self._last_sample = float("-inf")
        self._h_slice = (
            tel.metrics.histogram("service.slice_seconds", _SLICE_BUCKETS)
            if tel.metering
            else None
        )

    # -- workload plumbing ----------------------------------------------
    def workload_spec(self) -> WorkloadSpec:
        """The spec a live producer should generate against.

        Built exactly as the batch runner builds it (same reference
        speed, same overrides), so a service fed by
        ``WorkloadGenerator(engine.workload_spec(), RandomStreams(seed))``
        sees the batch run's task sequence bit for bit.
        """
        config = self.config
        return WorkloadSpec(
            num_tasks=config.num_tasks,
            mean_interarrival=config.effective_mean_interarrival,
            size_range_mi=config.size_range_mi,
            priority_mix=config.priority_mix,
            reference_speed_mips=self.reference_speed,
            **dict(config.workload_overrides),
        )

    # -- introspection ---------------------------------------------------
    @property
    def now(self) -> float:
        return self.env.now

    @property
    def completed(self) -> int:
        return len(self.scheduler.completed)

    @property
    def drained(self) -> bool:
        return self._drained

    @property
    def tasks_injected(self) -> int:
        """Tasks that entered the kernel (distinct from fault counts)."""
        return len(self.injected)

    @property
    def failures_injected(self) -> int:
        """Node faults injected so far (0 without a failure model)."""
        return self._failures.failures_injected if self._failures else 0

    @property
    def repairs_completed(self) -> int:
        """Node repairs completed so far (0 without a failure model)."""
        return self._failures.repairs_completed if self._failures else 0

    # -- stepping --------------------------------------------------------
    def advance(self, ingress: IngressQueue, slice_len: float = DEFAULT_SLICE) -> int:
        """Run one bounded slice; returns how many tasks were injected.

        Pops every admitted task whose arrival lies within the slice,
        injects each at its exact arrival epoch, then advances the
        kernel to the slice target — clamped to the admission frontier,
        since time beyond the last admitted arrival is not yet settled
        while the stream remains open.
        """
        if self._drained:
            raise ServiceError("engine already drained")
        if slice_len <= 0:
            raise ValueError("slice_len must be positive")
        wall0 = _time.perf_counter()
        target = self.env.now + slice_len
        injected = 0
        while True:
            task = ingress.pop_next(target)
            if task is None:
                break
            self._inject(task)
            injected += 1
        if ingress.head_arrival() is not None:
            # Tasks queued beyond the target pin the frontier past it.
            cap = target
        else:
            cap = min(target, ingress.frontier)
        if cap > self.env.now:
            if self._failures is not None:
                self._failures.advance_frontier(cap)
            self.env.run(until=cap)
        if self._h_slice is not None:
            self._h_slice.observe(_time.perf_counter() - wall0)
        self._sample()
        return injected

    def _inject(self, task: Task) -> None:
        arrival = task.arrival_time
        if arrival < self.env.now:
            raise ServiceError(
                f"task {task.tid} arrives at {arrival:.6g}, before the "
                f"kernel clock {self.env.now:.6g} — the ingress frontier "
                "invariant was violated"
            )
        if arrival > self.env.now:
            if self._failures is not None:
                self._failures.advance_frontier(arrival)
            # run(until=t) stops before any event at t, exactly where the
            # batch arrival process would wake to submit this task.
            self.env.run(until=arrival)
        tel = self.telemetry
        if tel.tracing:
            tel.emit(
                CAT_TASK,
                "submit",
                self.env.now,
                task=task.tid,
                size_mi=task.size_mi,
                deadline=task.deadline,
                priority=task.priority.label,
            )
        self.scheduler.submit(task)
        self.injected.append(task)

    def _sample(self) -> None:
        """Record the flight-recorder probes at the current slice edge.

        The batch runner samples with a kernel-level
        :class:`~repro.obs.PeriodicSampler`; the engine instead samples
        from *outside* the kernel at slice boundaries, keeping the
        event stream identical to an unsampled batch run.
        """
        if not self._probes:
            return
        now = self.env.now
        if now <= self._last_sample:
            return
        self._last_sample = now
        bank = self.telemetry.series
        for probe in self._probes:
            probe(bank, now)

    # -- drain -----------------------------------------------------------
    def drain(self, ingress: IngressQueue) -> Optional[RunMetrics]:
        """Inject everything still queued and run to the last completion.

        Mirrors the batch endgame: wait on ``scheduler.expect(n)``
        against a simulated-time wall of ``max(arrival_span, 1) *
        sim_time_factor`` (the batch cap, so a stalled scheduler raises
        :class:`ServiceStalled` instead of spinning forever), then
        freeze the energy meters at the exact drain instant.  Returns
        the collected :class:`RunMetrics`, or None when no task was
        ever injected.
        """
        if self._drained:
            raise ServiceError("engine already drained")
        while True:
            task = ingress.pop_next(float("inf"))
            if task is None:
                break
            self._inject(task)
        n = len(self.injected)
        if n == 0:
            self._finalize()
            return None
        done = self.scheduler.expect(n)
        if len(self.scheduler.completed) < n:
            arrival_span = self.injected[-1].arrival_time
            time_cap = max(arrival_span, 1.0) * self.config.sim_time_factor
            if self._failures is not None:
                # The stream is settled: fix the injection horizon to
                # the batch cap, so the endgame sees exactly the clamped
                # failure schedule a batch run would have armed up front.
                self._failures.close(time_cap)
            cap_event = self.env.timeout(max(time_cap - self.env.now, 0.0))
            self.env.run(until=AnyOf(self.env, [done, cap_event]))
            if not done.triggered:
                raise ServiceStalled(
                    f"{self.scheduler.name}: only "
                    f"{len(self.scheduler.completed)}/{n} tasks completed "
                    f"within t={time_cap:.0f}"
                )
        self._sample()
        self._finalize()
        self.metrics = collect_metrics(self.scheduler, self.system, self.injected)
        return self.metrics

    def _finalize(self) -> None:
        now = self.env.now
        for proc in self.system.processors:
            proc.meter.finalize(now)
        self._drained = True
        if self.auditor is not None:
            self.audit = self.auditor.finalize()
        tel = self.telemetry
        if tel.metering:
            registry = tel.metrics
            joules = {"busy": 0.0, "idle": 0.0, "sleep": 0.0}
            seconds = {"busy": 0.0, "idle": 0.0, "sleep": 0.0}
            for proc in self.system.processors:
                breakdown = proc.meter.snapshot()
                joules["busy"] += breakdown.busy_energy
                joules["idle"] += breakdown.idle_energy
                joules["sleep"] += breakdown.sleep_energy
                seconds["busy"] += breakdown.busy_time
                seconds["idle"] += breakdown.idle_time
                seconds["sleep"] += breakdown.sleep_time
            for state in ("busy", "idle", "sleep"):
                registry.counter(f"energy.joules.{state}").inc(joules[state])
                registry.counter(f"energy.seconds.{state}").inc(seconds[state])
        if tel.tracing:
            tel.emit(
                CAT_RUN,
                "end",
                now,
                scheduler=self.scheduler.name,
                completed=len(self.scheduler.completed),
                tasks_injected=len(self.injected),
                failures_injected=self.failures_injected,
            )
