"""Durable admission log: exactly-once task admission across crashes.

The service's crash-recovery contract is narrow and therefore strong:
the *simulation* is deterministic given the admitted task sequence, so
the only state worth making durable is that sequence.  Every admission
decision is appended — fsynced, one JSON object per line, via the same
:class:`~repro.parallel.jsonl.JsonlAppender` idiom the campaign
checkpoint journal uses — *before* the task enters the queue.  After a
crash, :meth:`AdmissionJournal.load` reconstructs:

- the admitted-but-not-shed tasks (replayed into a fresh engine, which
  re-runs them deterministically);
- how many producer items were consumed (so the resumed producer skips
  exactly that many — no task is admitted twice, none is lost);
- whether the service already drained (resume becomes a no-op).

Event vocabulary (one ``ev`` per line)::

    {"ev":"service","version":1,"seed":...,"config":{...}}   header
    {"ev":"admit","seq":N,"task":{...trace record...}}
    {"ev":"shed","tid":T}            cancels the admit carrying tid T
    {"ev":"reject","tid":T}          producer item consumed, never queued
    {"ev":"resume","recovered":N}    a new process life took over
    {"ev":"drained","admitted":N,"completed":M,
     "failures_injected":F,"repairs_completed":R}  clean shutdown marker

``seq`` must be contiguous from 0 — a gap means entries were lost to
something other than a torn tail, and the journal refuses to replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..parallel.jsonl import JsonlAppender, read_journal_entries
from ..workload.task import Task
from ..workload.traces import record_to_task, trace_to_records
from .errors import ServiceJournalError

__all__ = ["AdmissionJournal", "JournalState"]

_FORMAT_VERSION = 1

#: Journal file name inside the journal directory.
JOURNAL_FILENAME = "admissions.jsonl"


@dataclass
class JournalState:
    """Everything :meth:`AdmissionJournal.load` recovers from disk."""

    seed: int
    config: Dict[str, object]
    #: Admitted-and-not-shed tasks, in admission (= arrival) order.
    pending_tasks: List[Task] = field(default_factory=list)
    #: Producer items consumed (admits + rejects) — the resume skip count.
    consumed: int = 0
    admitted: int = 0
    shed: int = 0
    rejected: int = 0
    resumes: int = 0
    drained: bool = False
    #: Completion count recorded by a ``drained`` marker (if any).
    completed: Optional[int] = None
    #: Failure-injection counters recorded by a ``drained`` marker
    #: (0 for journals written without a failure model, and for
    #: pre-failure-injection journals that lack the keys).
    failures_injected: int = 0
    repairs_completed: int = 0


class AdmissionJournal:
    """Append side of the admission log (the load side is a classmethod).

    One journal per service run, living at
    ``<journal_dir>/admissions.jsonl``.  Open it exactly one of two
    ways: :meth:`open_fresh` (truncates; writes the header) for a new
    run, or :meth:`open_resume` (appends; writes a ``resume`` marker)
    after :meth:`load` recovered a prior life's state.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.path = self.directory / JOURNAL_FILENAME
        self._writer = JsonlAppender(self.path, error=ServiceJournalError)

    # -- lifecycle -------------------------------------------------------
    @classmethod
    def exists(cls, directory: Union[str, Path]) -> bool:
        return (Path(directory) / JOURNAL_FILENAME).is_file()

    def open_fresh(self, seed: int, config: Dict[str, object]) -> "AdmissionJournal":
        """Start a new journal (truncating any prior one) with a header."""
        self._writer.open(fresh=True)
        self._writer.append(
            {
                "ev": "service",
                "version": _FORMAT_VERSION,
                "seed": int(seed),
                "config": config,
            }
        )
        return self

    def open_resume(self, recovered: int) -> "AdmissionJournal":
        """Reopen an existing journal for appending after a crash.

        Writes a ``resume`` marker recording how many pending tasks the
        new life recovered — an audit trail of process deaths.
        """
        if not self.path.is_file():
            raise ServiceJournalError(
                f"cannot resume: no journal at {self.path}"
            )
        self._writer.open(fresh=False)
        self._writer.append({"ev": "resume", "recovered": int(recovered)})
        return self

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "AdmissionJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def is_open(self) -> bool:
        return self._writer.is_open

    # -- append events ---------------------------------------------------
    def write_admit(self, seq: int, task: Task) -> None:
        record = trace_to_records([task])[0]
        self._writer.append({"ev": "admit", "seq": int(seq), "task": record})

    def write_shed(self, tid: int) -> None:
        self._writer.append({"ev": "shed", "tid": int(tid)})

    def write_reject(self, tid: int) -> None:
        self._writer.append({"ev": "reject", "tid": int(tid)})

    def write_drained(
        self,
        admitted: int,
        completed: int,
        failures_injected: int = 0,
        repairs_completed: int = 0,
    ) -> None:
        self._writer.append(
            {
                "ev": "drained",
                "admitted": int(admitted),
                "completed": int(completed),
                "failures_injected": int(failures_injected),
                "repairs_completed": int(repairs_completed),
            }
        )

    # -- load / replay ---------------------------------------------------
    @classmethod
    def load(cls, directory: Union[str, Path]) -> JournalState:
        """Reconstruct the admission state from ``admissions.jsonl``.

        Tolerates a torn final line (the crash write); raises
        :class:`ServiceJournalError` on anything else that breaks the
        journal's invariants — missing header, wrong version, a ``seq``
        gap, a shed for an unknown tid.
        """
        path = Path(directory) / JOURNAL_FILENAME
        if not path.is_file():
            raise ServiceJournalError(f"no admission journal at {path}")
        entries = read_journal_entries(path, error=ServiceJournalError)
        if not entries:
            raise ServiceJournalError(f"{path}: journal is empty")
        lineno, header = entries[0]
        if header.get("ev") != "service":
            raise ServiceJournalError(
                f"{path}:{lineno}: journal does not start with a "
                f"service header"
            )
        version = header.get("version")
        if version != _FORMAT_VERSION:
            raise ServiceJournalError(
                f"{path}:{lineno}: unsupported journal version {version!r}"
            )
        state = JournalState(
            seed=int(header["seed"]), config=dict(header.get("config", {}))
        )
        admitted: List[Task] = []
        shed_tids = set()
        for lineno, entry in entries[1:]:
            ev = entry.get("ev")
            if ev == "admit":
                seq = entry.get("seq")
                if seq != len(admitted):
                    raise ServiceJournalError(
                        f"{path}:{lineno}: admit seq {seq!r} breaks the "
                        f"contiguous sequence (expected {len(admitted)})"
                    )
                try:
                    task = record_to_task(entry["task"])
                except (KeyError, TypeError, ValueError) as exc:
                    raise ServiceJournalError(
                        f"{path}:{lineno}: unreadable admitted task: {exc}"
                    ) from exc
                admitted.append(task)
            elif ev == "shed":
                tid = entry.get("tid")
                if not any(t.tid == tid for t in admitted):
                    raise ServiceJournalError(
                        f"{path}:{lineno}: shed of unknown tid {tid!r}"
                    )
                if tid in shed_tids:
                    raise ServiceJournalError(
                        f"{path}:{lineno}: tid {tid!r} shed twice"
                    )
                shed_tids.add(tid)
                state.shed += 1
            elif ev == "reject":
                state.rejected += 1
            elif ev == "resume":
                state.resumes += 1
            elif ev == "drained":
                state.drained = True
                state.completed = int(entry.get("completed", 0))
                state.failures_injected = int(
                    entry.get("failures_injected", 0)
                )
                state.repairs_completed = int(
                    entry.get("repairs_completed", 0)
                )
            elif ev == "service":
                raise ServiceJournalError(
                    f"{path}:{lineno}: duplicate service header"
                )
            else:
                raise ServiceJournalError(
                    f"{path}:{lineno}: unknown journal event {ev!r}"
                )
        state.admitted = len(admitted)
        state.consumed = len(admitted) + state.rejected
        if not state.drained:
            state.pending_tasks = [
                t for t in admitted if t.tid not in shed_tids
            ]
        return state
