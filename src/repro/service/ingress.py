"""Bounded ingress queue: admission control, backpressure, watermarks.

The ingress is the service's front door.  Producers — a live
:class:`~repro.workload.generator.WorkloadGenerator` stream, a JSONL
trace replay, or programmatic :meth:`IngressQueue.submit` callers —
push tasks in; the :class:`~repro.service.engine.SliceEngine` pops them
as simulated time reaches their arrival epochs.  The queue is bounded,
and what happens at the bound is the *admission policy*:

- ``block`` — the producer waits for space (``submit(block=False)``
  returns ``False`` instead, for single-threaded pumps that interleave
  producing with engine slices);
- ``reject`` — raise :class:`AdmissionRejected` (``queue-full``);
- ``shed-low`` — evict the lowest-priority queued task to make room
  (the incoming task itself is shed when nothing queued is lower).

Every admission decision is journaled *before* it takes effect when a
:class:`~repro.service.journal.AdmissionJournal` is attached — the
durable-admission contract: an acked task survives a crash.

Thread-safety: all public methods take one internal condition lock, so
multi-threaded producers and a draining engine can share the queue.
"""

from __future__ import annotations

import threading
import time as _time
from collections import deque
from typing import List, Optional

from ..obs import NULL_TELEMETRY, Telemetry
from ..workload.priorities import Priority
from ..workload.task import Task
from .errors import (
    REASON_CLOSED,
    REASON_OUT_OF_ORDER,
    REASON_QUEUE_FULL,
    REASON_SHED,
    AdmissionRejected,
)

__all__ = ["IngressQueue", "ADMISSION_POLICIES"]

#: Admission policies accepted by :class:`IngressQueue`.
ADMISSION_POLICIES = ("block", "reject", "shed-low")


class IngressQueue:
    """Bounded task queue with explicit admission policy.

    Parameters
    ----------
    max_queue:
        Capacity bound; the backpressure point.
    policy:
        One of :data:`ADMISSION_POLICIES`.
    journal:
        Optional open :class:`~repro.service.journal.AdmissionJournal`;
        every admit/shed/reject decision is journaled before it is
        acknowledged.
    telemetry:
        Metering (when armed) maintains ``service.admitted`` /
        ``service.rejected`` / ``service.shed`` /
        ``service.backpressure_waits`` counters and the
        ``service.queue_depth`` gauge (its high-water mark is the
        watermark the ops surface exposes).
    """

    def __init__(
        self,
        max_queue: int = 1024,
        policy: str = "block",
        journal=None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if max_queue <= 0:
            raise ValueError("max_queue must be positive")
        if policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {policy!r}; "
                f"known: {', '.join(ADMISSION_POLICIES)}"
            )
        self.max_queue = max_queue
        self.policy = policy
        self.journal = journal
        tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self._tasks: deque[Task] = deque()
        self._cond = threading.Condition()
        self._closed = False
        #: Largest arrival time ever admitted — the *admission frontier*
        #: the engine may safely advance simulated time to while the
        #: stream is open (future admissions arrive at or beyond it).
        self.frontier = float("-inf")
        # Admission ledger (plain attributes; mirrored into telemetry
        # counters when metering is armed).
        self.admitted = 0
        self.rejected = 0
        self.shed = 0
        self.backpressure_waits = 0
        self.depth_high = 0
        if tel.metering:
            metrics = tel.metrics
            self._c_admitted = metrics.counter("service.admitted")
            self._c_rejected = metrics.counter("service.rejected")
            self._c_shed = metrics.counter("service.shed")
            self._c_waits = metrics.counter("service.backpressure_waits")
            self._g_depth = metrics.gauge("service.queue_depth")
        else:
            self._c_admitted = None
            self._c_rejected = None
            self._c_shed = None
            self._c_waits = None
            self._g_depth = None

    # -- introspection ---------------------------------------------------
    @property
    def depth(self) -> int:
        """Tasks currently queued (admitted, not yet injected)."""
        return len(self._tasks)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def drained(self) -> bool:
        """Closed with nothing left queued."""
        return self._closed and not self._tasks

    # -- admission -------------------------------------------------------
    def submit(
        self,
        task: Task,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> bool:
        """Admit *task* under the configured policy.

        Returns ``True`` on admission.  Under the ``block`` policy with
        ``block=False`` (or an expired *timeout*), returns ``False``
        without admitting — the caller should retry after the engine
        has consumed some queue.  Raises :class:`AdmissionRejected`
        when the policy refuses the task outright (``reject`` at
        capacity, the incoming task shed by ``shed-low``, a closed
        ingress, or an out-of-order arrival).
        """
        with self._cond:
            self._check_admissible(task)
            # The timeout bounds the *total* wait: a per-iteration
            # wait(timeout) would re-arm the clock on every spurious
            # wakeup or still-full notify, making the wait unbounded.
            deadline: Optional[float] = None
            while len(self._tasks) >= self.max_queue:
                if self.policy == "reject":
                    self._journal_reject(task)
                    self._count_reject()
                    raise AdmissionRejected(REASON_QUEUE_FULL, task.tid)
                if self.policy == "shed-low":
                    self._shed_for(task)
                    break
                # block policy
                self.backpressure_waits += 1
                if self._c_waits is not None:
                    self._c_waits.inc()
                if not block:
                    return False
                if timeout is None:
                    self._cond.wait()
                else:
                    if deadline is None:
                        deadline = _time.monotonic() + timeout
                    remaining = deadline - _time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        return False
                self._check_admissible(task)
            self._admit(task)
            return True

    def restore(self, task: Task, block: bool = False) -> bool:
        """Re-enqueue an already-journaled task (journal resume path).

        Bypasses the admission policy and the journal — the task *was*
        admitted, in a previous process life; shedding or re-journaling
        it here would break exactly-once.  Capacity still applies
        (``False`` = full, retry after an engine slice).
        """
        with self._cond:
            if self._closed:
                raise AdmissionRejected(REASON_CLOSED, task.tid)
            if task.arrival_time < self.frontier:
                raise AdmissionRejected(
                    REASON_OUT_OF_ORDER,
                    task.tid,
                    f"arrival {task.arrival_time:.6g} precedes the "
                    f"admission frontier {self.frontier:.6g}",
                )
            while len(self._tasks) >= self.max_queue:
                if not block:
                    return False
                self._cond.wait()
                if self._closed:
                    raise AdmissionRejected(REASON_CLOSED, task.tid)
            self._enqueue(task)
            return True

    def _check_admissible(self, task: Task) -> None:
        if self._closed:
            raise AdmissionRejected(REASON_CLOSED, task.tid)
        if task.arrival_time < self.frontier:
            raise AdmissionRejected(
                REASON_OUT_OF_ORDER,
                task.tid,
                f"arrival {task.arrival_time:.6g} precedes the "
                f"admission frontier {self.frontier:.6g}",
            )

    def _shed_for(self, incoming: Task) -> None:
        """Make room for *incoming* by shedding the lowest-priority task.

        Ties break toward the oldest queued task (furthest from its
        arrival epoch, so least likely to matter).  When nothing queued
        is strictly lower-priority than *incoming*, the incoming task
        itself is the lowest load — it is shed instead.
        """
        victim_index = None
        victim_priority = Priority.HIGH
        for i, queued in enumerate(self._tasks):
            if victim_index is None or queued.priority > victim_priority:
                victim_index = i
                victim_priority = queued.priority
        if victim_index is None or incoming.priority >= victim_priority:
            self._journal_shed(incoming, admitted=False)
            self._count_shed()
            raise AdmissionRejected(REASON_SHED, incoming.tid)
        victim = self._tasks[victim_index]
        del self._tasks[victim_index]
        self._journal_shed(victim, admitted=True)
        self._count_shed()

    def _admit(self, task: Task) -> None:
        if self.journal is not None:
            self.journal.write_admit(self.admitted, task)
        self.admitted += 1
        if self._c_admitted is not None:
            self._c_admitted.inc()
        self._enqueue(task)

    def _enqueue(self, task: Task) -> None:
        self._tasks.append(task)
        if task.arrival_time > self.frontier:
            self.frontier = task.arrival_time
        depth = len(self._tasks)
        if depth > self.depth_high:
            self.depth_high = depth
        if self._g_depth is not None:
            self._g_depth.set(depth)

    def _journal_shed(self, task: Task, admitted: bool) -> None:
        if self.journal is not None:
            if not admitted:
                # An incoming task shed before ever being queued still
                # consumed a producer item: journal the admission first
                # so the shed entry has an admit to cancel, keeping the
                # consumed-count arithmetic uniform on resume.
                self.journal.write_admit(self.admitted, task)
            self.journal.write_shed(task.tid)
        if not admitted:
            self.admitted += 1
            if self._c_admitted is not None:
                self._c_admitted.inc()

    def _journal_reject(self, task: Task) -> None:
        if self.journal is not None:
            self.journal.write_reject(task.tid)

    def _count_reject(self) -> None:
        self.rejected += 1
        if self._c_rejected is not None:
            self._c_rejected.inc()

    def _count_shed(self) -> None:
        self.shed += 1
        if self._c_shed is not None:
            self._c_shed.inc()

    # -- consumption (engine side) --------------------------------------
    def pop_next(self, horizon: float) -> Optional[Task]:
        """Pop the head task if its arrival lies at or before *horizon*.

        The engine calls this with its slice target so the queue drains
        at simulated-time rate — that lag is exactly what makes the
        bound meaningful as backpressure.
        """
        with self._cond:
            if not self._tasks:
                return None
            head = self._tasks[0]
            if head.arrival_time > horizon:
                return None
            self._tasks.popleft()
            if self._g_depth is not None:
                self._g_depth.set(len(self._tasks))
            self._cond.notify_all()
            return head

    def head_arrival(self) -> Optional[float]:
        """Arrival time of the queue head (None when empty)."""
        with self._cond:
            return self._tasks[0].arrival_time if self._tasks else None

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Stop admitting (drain begins); idempotent.

        Queued tasks remain — they are admitted work the engine must
        still run down.  Blocked producers wake and see
        :class:`AdmissionRejected` (``closed``).
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def snapshot(self) -> dict:
        """Point-in-time admission ledger (for reports and logs)."""
        with self._cond:
            return {
                "admitted": self.admitted,
                "rejected": self.rejected,
                "shed": self.shed,
                "backpressure_waits": self.backpressure_waits,
                "depth": len(self._tasks),
                "depth_high": self.depth_high,
                "closed": self._closed,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<IngressQueue {self.policy} depth={self.depth}/"
            f"{self.max_queue} admitted={self.admitted}>"
        )
