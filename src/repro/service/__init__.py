"""Streaming scheduler-as-a-service over the simulation kernel.

Where the batch harness (:mod:`repro.experiments`) runs a pre-generated
workload to completion in one call, this package runs the same physics
*as a service*: tasks stream in through a bounded ingress with explicit
admission policies (block / reject / shed-low), a slice engine advances
the kernel incrementally while preserving batch-run determinism, a
durable admission journal gives exactly-once admission across crashes,
and the live ops surface (counters, watermark gauges, flight-recorder
series, ``/metrics``) shows the run while it happens.

Entry points::

    python -m repro.service --scheduler adaptive-rl --num-tasks 10000 ...
    python -m repro.service.selfcheck        # CI smoke: drain + resume

or programmatically via :class:`SchedulerService` — see
``docs/service.md``.
"""

from .engine import DEFAULT_SLICE, SliceEngine
from .errors import (
    ADMISSION_REASONS,
    REASON_CLOSED,
    REASON_OUT_OF_ORDER,
    REASON_QUEUE_FULL,
    REASON_SHED,
    AdmissionRejected,
    ServiceError,
    ServiceJournalError,
    ServiceStalled,
)
from .ingress import ADMISSION_POLICIES, IngressQueue
from .journal import AdmissionJournal, JournalState
from .lifecycle import SchedulerService, ServiceReport, ServiceState

__all__ = [
    "SchedulerService",
    "ServiceReport",
    "ServiceState",
    "SliceEngine",
    "DEFAULT_SLICE",
    "IngressQueue",
    "ADMISSION_POLICIES",
    "AdmissionJournal",
    "JournalState",
    "ServiceError",
    "ServiceJournalError",
    "ServiceStalled",
    "AdmissionRejected",
    "ADMISSION_REASONS",
    "REASON_QUEUE_FULL",
    "REASON_CLOSED",
    "REASON_SHED",
    "REASON_OUT_OF_ORDER",
]
