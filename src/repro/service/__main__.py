"""Service-mode CLI: stream a workload through the scheduler service.

Usage::

    python -m repro.service --scheduler adaptive-rl --num-tasks 10000 \\
        --arrival-rate 4 --max-queue 256 --admission-policy block \\
        --journal-dir /tmp/svc --serve-metrics 0

    python -m repro.service --replay trace.jsonl --journal-dir /tmp/svc
    python -m repro.service --journal-dir /tmp/svc --resume

The service admits tasks from a live generator (``--num-tasks`` /
``--arrival-rate``) or a trace file (``--replay``, JSONL/JSON/SWF), runs
them through
the simulation kernel in bounded slices, and drains gracefully on
producer exhaustion, ``--drain-after``, SIGINT, or SIGTERM — exit code
0 means every admitted task completed.  With ``--journal-dir`` every
admission is fsynced before it is acknowledged; after a crash,
``--resume`` recovers the admitted tasks and continues the producer
exactly where it left off (re-pass ``--replay FILE`` when the original
run replayed a trace).  The final line is machine-parseable::

    SERVICE-REPORT {"state":"stopped","admitted":10000,...}
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..experiments.config import ExperimentConfig
from ..obs import (
    DEFAULT_SAMPLE_EVERY,
    MetricsRegistry,
    SeriesBank,
    Telemetry,
    use,
)
from ..sim.rng import RandomStreams
from ..workload.generator import WorkloadGenerator
from ..workload.traces import iter_workload
from .engine import DEFAULT_SLICE
from .errors import ServiceError
from .ingress import ADMISSION_POLICIES
from .journal import AdmissionJournal
from .lifecycle import SchedulerService

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    work = parser.add_argument_group("workload")
    work.add_argument(
        "--scheduler", default="adaptive-rl",
        help="scheduler to serve (default: adaptive-rl)",
    )
    work.add_argument("--seed", type=int, default=1, help="RNG seed")
    work.add_argument(
        "--num-tasks", type=int, default=1000,
        help="tasks the live generator streams (default: 1000)",
    )
    work.add_argument(
        "--arrival-rate", type=float, default=None, metavar="R",
        help="mean arrivals per simulated time unit (sets mean "
        "inter-arrival 1/R; default: the batch arrival-period calibration)",
    )
    work.add_argument(
        "--replay", metavar="FILE", default=None,
        help="stream tasks from a trace (.jsonl, .json, or .swf) instead "
        "of the generator",
    )
    work.add_argument(
        "--failure-mtbf", type=float, default=None, metavar="T",
        help="inject node crash-stop failures with this mean time "
        "between failures (simulated time; default: none). Ignored on "
        "--resume — the journal's stored config governs",
    )
    work.add_argument(
        "--failure-mttr", type=float, default=50.0, metavar="T",
        help="mean time to repair a failed node (default: 50)",
    )
    svc = parser.add_argument_group("service")
    svc.add_argument(
        "--max-queue", type=int, default=1024,
        help="ingress queue bound (default: 1024)",
    )
    svc.add_argument(
        "--admission-policy", choices=ADMISSION_POLICIES, default="block",
        help="what happens at the bound (default: block)",
    )
    svc.add_argument(
        "--slice", type=float, default=DEFAULT_SLICE, metavar="T",
        help=f"engine slice length in simulated time (default: {DEFAULT_SLICE:g})",
    )
    svc.add_argument(
        "--drain-after", type=float, default=None, metavar="T",
        help="stop admitting once the next arrival exceeds simulated "
        "time T, then drain",
    )
    svc.add_argument(
        "--journal-dir", metavar="DIR", default=None,
        help="durable admission log directory (enables --resume)",
    )
    svc.add_argument(
        "--resume", action="store_true",
        help="recover from the journal in --journal-dir: re-run admitted "
        "tasks, continue the producer exactly-once",
    )
    obs = parser.add_argument_group("observability")
    obs.add_argument(
        "--serve-metrics", type=int, metavar="PORT", default=None,
        help="serve live /metrics, /series.json and /dashboard on PORT "
        "(0 picks an ephemeral port)",
    )
    obs.add_argument(
        "--sample-every", type=float, metavar="T", default=None,
        help="flight-recorder cadence in simulated time "
        f"(default {DEFAULT_SAMPLE_EVERY:g} when armed)",
    )
    obs.add_argument(
        "--series-out", metavar="FILE", default=None,
        help="write the sampled series bank as JSON on exit (- for stdout)",
    )
    obs.add_argument(
        "--quiet", action="store_true", help="suppress progress output"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.resume and args.journal_dir is None:
        parser.error("--resume requires --journal-dir")
    if args.arrival_rate is not None and args.arrival_rate <= 0:
        parser.error("--arrival-rate must be positive")
    if args.sample_every is not None and args.sample_every <= 0:
        parser.error("--sample-every must be positive")
    if args.failure_mtbf is not None and args.failure_mtbf <= 0:
        parser.error("--failure-mtbf must be positive")
    if args.failure_mttr <= 0:
        parser.error("--failure-mttr must be positive")

    if args.resume:
        # The journal's stored config governs a resumed life; flags that
        # shape the workload are ignored by design (exactly-once would
        # be meaningless against a different task stream).
        try:
            config = ExperimentConfig.from_dict(
                AdmissionJournal.load(args.journal_dir).config
            )
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    elif args.arrival_rate is not None:
        config = ExperimentConfig(
            scheduler=args.scheduler,
            seed=args.seed,
            num_tasks=args.num_tasks,
            arrival_period=None,
            mean_interarrival=1.0 / args.arrival_rate,
            failure_mtbf=args.failure_mtbf,
            failure_mttr=args.failure_mttr,
        )
    else:
        config = ExperimentConfig(
            scheduler=args.scheduler,
            seed=args.seed,
            num_tasks=args.num_tasks,
            failure_mtbf=args.failure_mtbf,
            failure_mttr=args.failure_mttr,
        )

    if args.replay is not None:
        replay_path = args.replay

        def producer(engine):
            return iter_workload(replay_path)

    else:

        def producer(engine):
            # A fresh RandomStreams on the same seed: the workload
            # streams are name-keyed and disjoint from the system and
            # scheduler streams, so this generator emits the exact task
            # sequence the batch runner would have drawn.
            return WorkloadGenerator(
                engine.workload_spec(), RandomStreams(engine.config.seed)
            ).iter_tasks()

    want_series = (
        args.serve_metrics is not None
        or args.series_out is not None
        or args.sample_every is not None
    )
    telemetry = Telemetry(
        metrics=MetricsRegistry(),
        series=SeriesBank() if want_series else None,
        sample_every=args.sample_every,
    )

    service = SchedulerService(
        config,
        producer,
        max_queue=args.max_queue,
        policy=args.admission_policy,
        journal_dir=args.journal_dir,
        resume=args.resume,
        telemetry=telemetry,
        slice_len=args.slice,
        drain_after=args.drain_after,
    )

    server = None
    if args.serve_metrics is not None:
        from ..obs import MetricsServer

        server = MetricsServer(telemetry, port=args.serve_metrics).start()
        print(
            f"serving live telemetry on http://127.0.0.1:{server.port} "
            "(/metrics, /series.json, /dashboard)",
            flush=True,
        )

    rc = 0
    try:
        with use(telemetry):
            report = service.run(install_signal_handlers=True)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        rc = 1
        report = None
    finally:
        if server is not None:
            server.stop()

    if report is not None:
        if not args.quiet:
            _print_summary(report)
        print("SERVICE-REPORT " + json.dumps(report.to_dict()), flush=True)
        if report.state != "stopped":
            rc = 1
    if args.series_out is not None and telemetry.series is not None:
        text = json.dumps(telemetry.series.as_dict())
        if args.series_out == "-":
            sys.stdout.write(text + "\n")
        else:
            Path(args.series_out).write_text(text, encoding="utf-8")
            if not args.quiet:
                print(f"series -> {args.series_out}")
    return rc


def _print_summary(report) -> None:
    if report.already_drained:
        print(
            f"journal already drained: {report.admitted} admitted, "
            f"{report.completed} completed — nothing to resume"
        )
        return
    line = (
        f"{report.scheduler}: {report.admitted} admitted "
        f"({report.rejected} rejected, {report.shed} shed, "
        f"{report.backpressure_waits} backpressure waits, "
        f"queue high-water {report.depth_high}), "
        f"{report.completed}/{report.tasks_injected} completed "
        f"by t={report.sim_time:.1f}"
    )
    if report.failures_injected or report.repairs_completed:
        line += (
            f" [{report.failures_injected} failures, "
            f"{report.repairs_completed} repairs, "
            f"{report.tasks_resubmitted} resubmissions]"
        )
    if report.resumed:
        line += f" [resumed; {report.recovered} tasks recovered]"
    print(line)
    m = report.metrics
    if m is not None:
        print(
            f"  AVERT={m.avert:.2f}  ECS={m.ecs:.4f}  "
            f"success={m.success_rate:.3f}  makespan={m.makespan:.1f}"
        )


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
