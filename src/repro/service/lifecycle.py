"""Service lifecycle: the pump loop, drain state machine, and signals.

:class:`SchedulerService` ties the subsystem together: a *producer*
(any iterator of tasks — a live generator, a JSONL trace replay, or
nothing for programmatic submission) feeds the
:class:`~repro.service.ingress.IngressQueue`, whose admitted tasks the
:class:`~repro.service.engine.SliceEngine` injects and simulates in
bounded slices.  The state machine::

    NEW --run()--> RUNNING --drain--> DRAINING --> STOPPED
                      |                               ^
                      +---- exception ----> FAILED    |
                      +-- SIGTERM/SIGINT/drain_after -+

A *drain* is the graceful shutdown: admission closes, everything
already admitted runs to completion, meters freeze at the last
completion, metrics are collected, and (when journaled) a ``drained``
marker makes the shutdown durable.  SIGTERM and SIGINT both request a
drain — the service exits cleanly on the signal rather than dying with
admitted work unfinished.

With ``resume=True`` the service rebuilds itself from the admission
journal: the stored config and seed take over, previously admitted
tasks are restored into the queue (without re-journaling — they were
already admitted), and the producer is fast-forwarded past every
consumed item, giving exactly-once admission across process lives.
"""

from __future__ import annotations

import enum
import itertools
import signal
import time as _time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from ..experiments.config import ExperimentConfig
from ..metrics.collector import RunMetrics
from ..obs import Telemetry, get_telemetry
from ..workload.task import Task
from .engine import DEFAULT_SLICE, SliceEngine
from .errors import AdmissionRejected, ServiceError
from .ingress import IngressQueue
from .journal import AdmissionJournal, JournalState

__all__ = ["ServiceState", "ServiceReport", "SchedulerService"]

#: The pump admits at most this many producer tasks per step, so a fast
#: producer cannot starve the engine of wall-clock time.
DEFAULT_PUMP_BATCH = 64

_EXHAUSTED = object()


class ServiceState(enum.Enum):
    NEW = "new"
    RUNNING = "running"
    DRAINING = "draining"
    STOPPED = "stopped"
    FAILED = "failed"


@dataclass
class ServiceReport:
    """What one service life accomplished (JSON-safe via ``to_dict``)."""

    state: str
    scheduler: str
    seed: int
    admitted: int
    rejected: int
    shed: int
    backpressure_waits: int
    depth_high: int
    #: Tasks that entered the kernel this life.
    tasks_injected: int
    completed: int
    sim_time: float
    #: Node faults injected / repairs completed (0 without a failure
    #: model), and tasks transparently resubmitted after a node crash.
    failures_injected: int = 0
    repairs_completed: int = 0
    tasks_resubmitted: int = 0
    resumed: bool = False
    recovered: int = 0
    #: True when resume found a ``drained`` marker: nothing to do.
    already_drained: bool = False
    metrics: Optional[RunMetrics] = field(default=None, repr=False)

    def to_dict(self) -> dict:
        data = {
            "state": self.state,
            "scheduler": self.scheduler,
            "seed": self.seed,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "shed": self.shed,
            "backpressure_waits": self.backpressure_waits,
            "depth_high": self.depth_high,
            "tasks_injected": self.tasks_injected,
            "failures_injected": self.failures_injected,
            "repairs_completed": self.repairs_completed,
            "tasks_resubmitted": self.tasks_resubmitted,
            "completed": self.completed,
            "sim_time": self.sim_time,
            "resumed": self.resumed,
            "recovered": self.recovered,
            "already_drained": self.already_drained,
        }
        m = self.metrics
        if m is not None:
            data["metrics"] = {
                "makespan": m.makespan,
                "avert": m.avert,
                "ecs": m.ecs,
                "success_rate": m.success_rate,
            }
        return data


class SchedulerService:
    """Streaming scheduler-as-a-service over the simulation kernel.

    Parameters
    ----------
    config:
        The run configuration (scheduler, seed, platform, workload
        shape).  Ignored on ``resume=True`` — the journal's stored
        config governs, so a resumed life cannot silently diverge from
        the one that admitted the tasks.
    producer:
        Optional task iterator.  ``None`` means purely programmatic
        (:meth:`submit` / :meth:`step`) use.
    max_queue / policy:
        Ingress bound and admission policy (see
        :class:`~repro.service.ingress.IngressQueue`).
    journal_dir:
        Directory for the durable admission log; ``None`` disables
        journaling (and therefore resume).
    resume:
        Recover from an existing journal in *journal_dir* instead of
        starting fresh.
    drain_after:
        Simulated-time horizon: stop admitting once the next producer
        task arrives beyond it, then drain.  The streaming analogue of
        a fixed experiment length.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        producer: Optional[Iterator[Task]] = None,
        *,
        max_queue: int = 1024,
        policy: str = "block",
        journal_dir: Optional[Union[str, Path]] = None,
        resume: bool = False,
        telemetry: Optional[Telemetry] = None,
        slice_len: float = DEFAULT_SLICE,
        pump_batch: int = DEFAULT_PUMP_BATCH,
        drain_after: Optional[float] = None,
    ) -> None:
        if resume and journal_dir is None:
            raise ValueError("resume requires a journal directory")
        self.journal_state: Optional[JournalState] = None
        self._recovered: List[Task] = []
        skip = 0
        journal: Optional[AdmissionJournal] = None
        if journal_dir is not None and resume:
            state = AdmissionJournal.load(journal_dir)
            self.journal_state = state
            config = ExperimentConfig.from_dict(state.config)
            self._recovered = list(state.pending_tasks)
            skip = state.consumed
            journal = AdmissionJournal(journal_dir)
            if not state.drained:
                journal.open_resume(len(self._recovered))
            else:
                journal = None  # nothing to append to a finished run
        elif journal_dir is not None:
            journal = AdmissionJournal(journal_dir).open_fresh(
                config.seed, config.to_dict()
            )
        self.config = config
        tel = telemetry if telemetry is not None else get_telemetry()
        self.telemetry = tel
        self.engine = SliceEngine(config, telemetry=tel)
        self.ingress = IngressQueue(
            max_queue=max_queue, policy=policy, journal=journal, telemetry=tel
        )
        state = self.journal_state
        if state is not None and not state.drained:
            # Seed the ledger with the prior life's totals so admit seq
            # numbers stay contiguous in the journal and the report
            # counts span all lives, not just this one.
            self.ingress.admitted = state.admitted
            self.ingress.rejected = state.rejected
            self.ingress.shed = state.shed
        self.journal = journal
        if producer is not None and callable(producer):
            # A producer *factory* gets the built engine, so it can
            # derive the workload spec (reference speed and all) from
            # the very config this service runs — essential on resume,
            # where the journal's stored config governs.
            producer = producer(self.engine)
        if producer is not None and skip:
            producer = itertools.islice(producer, skip, None)
        self._producer = producer
        self.slice_len = slice_len
        self.pump_batch = pump_batch
        self.drain_after = drain_after
        self.state = ServiceState.NEW
        self._drain_requested = False
        self._exhausted = producer is None and not self._recovered
        self._next_task: Optional[Task] = None
        self._report: Optional[ServiceReport] = None
        if self.journal_state is not None and self.journal_state.drained:
            self.state = ServiceState.STOPPED

    # -- external control ------------------------------------------------
    def submit(self, task: Task, block: bool = True) -> bool:
        """Programmatic admission (same contract as the ingress)."""
        return self.ingress.submit(task, block=block)

    def request_drain(self) -> None:
        """Ask the pump loop to drain at the next step (signal-safe)."""
        self._drain_requested = True

    # -- the pump loop ---------------------------------------------------
    def step(self) -> bool:
        """One pump-admit-advance iteration.

        Returns True while the service is still running; the call that
        performs the drain returns False.  Drives everything: tests and
        embedders call it directly, :meth:`run` loops it.
        """
        if self.state in (ServiceState.STOPPED, ServiceState.FAILED):
            return False
        self.state = ServiceState.RUNNING
        try:
            self._pump()
            if self._drain_requested or (
                self._exhausted
                and self._next_task is None
                and not self._recovered
            ):
                self._drain()
                return False
            self.engine.advance(self.ingress, self.slice_len)
            self._record_series()
            return True
        except Exception:
            self.state = ServiceState.FAILED
            raise

    def run(self, install_signal_handlers: bool = False) -> ServiceReport:
        """Pump until drained; returns the final :class:`ServiceReport`.

        With ``install_signal_handlers=True`` (the CLI path), SIGINT
        and SIGTERM request a graceful drain — prior handlers are
        restored on exit.
        """
        if self.state is ServiceState.STOPPED:
            return self.report()
        previous = {}
        if install_signal_handlers:
            def _on_signal(signum, frame):  # pragma: no cover - signal path
                self.request_drain()

            for sig in (signal.SIGINT, signal.SIGTERM):
                previous[sig] = signal.signal(sig, _on_signal)
        try:
            while True:
                before = self.engine.now
                pumped_any = bool(self.ingress.depth or self._recovered)
                if not self.step():
                    break
                if (
                    self.engine.now == before
                    and not pumped_any
                    and self.ingress.depth == 0
                ):
                    # Nothing admitted and nothing to simulate: yield
                    # the GIL instead of spinning (a threaded producer
                    # may be on its way).
                    _time.sleep(0.0005)
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
            if self.journal is not None:
                self.journal.close()
        return self.report()

    # -- internals -------------------------------------------------------
    def _pump(self) -> int:
        """Move up to ``pump_batch`` tasks from the producer (or the
        resume recovery list) into the ingress without blocking."""
        count = 0
        while count < self.pump_batch:
            if self._recovered:
                # Recovered tasks re-enter ahead of any new production:
                # they hold the earliest arrivals and were already
                # journaled, so they bypass policy via restore().
                if self.ingress.restore(self._recovered[0]):
                    self._recovered.pop(0)
                    count += 1
                    continue
                break  # queue full; let the engine make room
            if self._exhausted:
                break
            task = self._next_task
            if task is None:
                task = next(self._producer, _EXHAUSTED)
                if task is _EXHAUSTED:
                    self._exhausted = True
                    break
            if (
                self.drain_after is not None
                and task.arrival_time > self.drain_after
            ):
                self._next_task = None
                self._exhausted = True
                break
            try:
                if self.ingress.submit(task, block=False):
                    self._next_task = None
                    count += 1
                else:
                    self._next_task = task  # backpressure: retry later
                    break
            except AdmissionRejected:
                # Typed rejection (queue-full under "reject", shed of
                # the incoming task): already counted and journaled by
                # the ingress; the stream moves on.
                self._next_task = None
        return count

    def _drain(self) -> None:
        self.state = ServiceState.DRAINING
        # A drain must not strand recovered tasks: they were admitted
        # (journaled) in a prior life, so exactly-once requires they
        # reach the engine even when the queue is momentarily full.
        while self._recovered:
            if self.ingress.restore(self._recovered[0]):
                self._recovered.pop(0)
            else:
                self.engine.advance(self.ingress, self.slice_len)
        self.ingress.close()
        metrics = self.engine.drain(self.ingress)
        self._record_series()
        if self.journal is not None:
            self.journal.write_drained(
                admitted=self.ingress.admitted,
                completed=self.engine.completed,
                failures_injected=self.engine.failures_injected,
                repairs_completed=self.engine.repairs_completed,
            )
        self.state = ServiceState.STOPPED
        self._report = self._build_report(metrics)

    def _record_series(self) -> None:
        tel = self.telemetry
        if not tel.sampling:
            return
        bank = tel.series
        now = self.engine.now
        snap = self.ingress.snapshot()
        bank.record("service.queue_depth", now, snap["depth"])
        bank.record("service.admitted", now, snap["admitted"])
        bank.record("service.rejected", now, snap["rejected"])
        bank.record("service.shed", now, snap["shed"])

    def _build_report(self, metrics: Optional[RunMetrics]) -> ServiceReport:
        snap = self.ingress.snapshot()
        return ServiceReport(
            state=self.state.value,
            scheduler=self.config.scheduler,
            seed=self.config.seed,
            admitted=snap["admitted"],
            rejected=snap["rejected"],
            shed=snap["shed"],
            backpressure_waits=snap["backpressure_waits"],
            depth_high=snap["depth_high"],
            tasks_injected=len(self.engine.injected),
            completed=self.engine.completed,
            sim_time=self.engine.now,
            failures_injected=self.engine.failures_injected,
            repairs_completed=self.engine.repairs_completed,
            tasks_resubmitted=self.engine.scheduler.tasks_resubmitted,
            resumed=self.journal_state is not None,
            recovered=(
                len(self.journal_state.pending_tasks)
                if self.journal_state is not None
                else 0
            ),
            metrics=metrics,
        )

    def report(self) -> ServiceReport:
        """The final report; available once the service has stopped."""
        if self._report is not None:
            return self._report
        state = self.journal_state
        if state is not None and state.drained:
            # Resume of a finished run: report the journal's record.
            self._report = ServiceReport(
                state=ServiceState.STOPPED.value,
                scheduler=self.config.scheduler,
                seed=self.config.seed,
                admitted=state.admitted,
                rejected=state.rejected,
                shed=state.shed,
                backpressure_waits=0,
                depth_high=0,
                tasks_injected=0,
                completed=state.completed or 0,
                sim_time=0.0,
                failures_injected=state.failures_injected,
                repairs_completed=state.repairs_completed,
                resumed=True,
                recovered=0,
                already_drained=True,
            )
            return self._report
        raise ServiceError("service has not stopped yet — no report")
