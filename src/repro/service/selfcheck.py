"""End-to-end service check: stream, scrape, SIGTERM, crash, resume.

Drives ``python -m repro.service`` as a real subprocess through the two
shutdown paths the service guarantees:

1. **Graceful drain** — start a journaled streaming run with the live
   metrics server, poll ``/metrics`` until admissions are flowing, send
   SIGTERM, and assert the process exits 0 with every admitted task
   completed and a ``drained`` journal marker; a ``--resume`` of that
   journal must then report *already drained* with zero pending work.
2. **Crash + resume** — start another run, watch the admission journal
   grow, SIGKILL the process mid-stream (no drain, no marker), then
   ``--resume`` and assert exactly-once admission: every producer task
   admitted exactly once across both lives, all of them completed.

Both phases run twice: once plain and once with ``--failure-mtbf`` so
node crashes and crash-resubmission ride along.  With failures on, the
checks additionally assert ``completed == tasks_injected`` (the
scheduler resubmitted every orphan), a nonzero ``failures_injected`` in
the report *and* in the journal's drained marker, and that the resumed
life re-derives the failure schedule from the journal's stored config
alone (``--resume`` passes no failure flags).

CI runs this as ``python -m repro.service.selfcheck``; it is equally
useful locally after touching the service.  Exit status 0 means every
assertion held.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path
from typing import List, Optional

from .journal import JOURNAL_FILENAME, AdmissionJournal

__all__ = ["main"]

_PORT_PREFIX = "serving live telemetry on http://127.0.0.1:"


def _spawn(args: List[str]) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.service", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )


def _read_port(proc: subprocess.Popen, deadline: float) -> int:
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError("service exited before announcing its port")
        if line.startswith(_PORT_PREFIX):
            return int(line[len(_PORT_PREFIX):].split()[0].rstrip("/"))
    raise AssertionError("timed out waiting for the metrics port line")


def _scrape(port: int, path: str = "/metrics") -> str:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=5
    ) as resp:
        return resp.read().decode("utf-8")


def _metric(text: str, name: str) -> Optional[float]:
    for line in text.splitlines():
        if line.startswith(name + " "):
            return float(line.split()[1])
    return None


def _parse_report(output: str) -> dict:
    for line in reversed(output.splitlines()):
        if line.startswith("SERVICE-REPORT "):
            return json.loads(line[len("SERVICE-REPORT "):])
    raise AssertionError(f"no SERVICE-REPORT line in output:\n{output}")


def _journal_admits(journal_dir: Path) -> List[int]:
    tids = []
    for line in (journal_dir / JOURNAL_FILENAME).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail from the SIGKILL — expected
        if entry.get("ev") == "admit":
            tids.append(entry["task"]["tid"])
    return tids


def _assert_fault_counters(
    tag: str, report: dict, jdir: Path, failures: List[str]
) -> None:
    """With failure injection on, the report and the journal's drained
    marker must both carry a nonzero failure count, the scheduler must
    have resubmitted every orphan (completed == tasks_injected), and the
    two sources must agree."""
    if report["completed"] != report["tasks_injected"]:
        failures.append(
            f"{tag}: {report['completed']} completed != "
            f"{report['tasks_injected']} tasks_injected — "
            "crash-resubmission lost work"
        )
    if report.get("failures_injected", 0) <= 0:
        failures.append(
            f"{tag}: failures_injected is zero — the injector never "
            "fired (mtbf too high for this stream?)"
        )
    state = AdmissionJournal.load(jdir)
    if state.failures_injected != report.get("failures_injected"):
        failures.append(
            f"{tag}: drained marker records "
            f"{state.failures_injected} failures, report says "
            f"{report.get('failures_injected')}"
        )
    if state.repairs_completed != report.get("repairs_completed"):
        failures.append(
            f"{tag}: drained marker records "
            f"{state.repairs_completed} repairs, report says "
            f"{report.get('repairs_completed')}"
        )


def _check_graceful(
    workdir: Path,
    num_tasks: int,
    timeout: float,
    failure_mtbf: Optional[float] = None,
) -> List[str]:
    failures: List[str] = []
    tag = "graceful+failures" if failure_mtbf is not None else "graceful"
    jdir = workdir / tag
    extra = (
        ["--failure-mtbf", str(failure_mtbf), "--failure-mttr", "40"]
        if failure_mtbf is not None
        else []
    )
    proc = _spawn(
        [
            "--scheduler", "fcfs",
            "--num-tasks", str(num_tasks),
            "--arrival-rate", "0.4",
            "--max-queue", "64",
            "--journal-dir", str(jdir),
            "--serve-metrics", "0",
            "--quiet",
            *extra,
        ]
    )
    deadline = time.monotonic() + timeout
    try:
        port = _read_port(proc, deadline)
        admitted = 0.0
        while time.monotonic() < deadline:
            text = _scrape(port)
            admitted = _metric(text, "repro_service_admitted") or 0.0
            if admitted >= 50:
                break
            time.sleep(0.05)
        if admitted < 50:
            failures.append(
                f"{tag}: only {admitted:.0f} admissions before timeout"
            )
        if _metric(_scrape(port), "repro_service_queue_depth") is None:
            failures.append(f"{tag}: /metrics lacks the queue depth gauge")
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=timeout)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    if proc.returncode != 0:
        failures.append(f"{tag}: exit code {proc.returncode}, expected 0")
        return failures
    report = _parse_report(out)
    if report["state"] != "stopped":
        failures.append(f"{tag}: final state {report['state']!r}")
    if report["completed"] != report["tasks_injected"]:
        failures.append(
            f"{tag}: {report['completed']} completed != "
            f"{report['tasks_injected']} injected — drain lost tasks"
        )
    if report["admitted"] >= num_tasks:
        failures.append(
            f"{tag}: the full stream was admitted before SIGTERM — "
            "the drain path was never exercised (raise --tasks)"
        )
    state = AdmissionJournal.load(jdir)
    if not state.drained:
        failures.append(f"{tag}: journal has no drained marker")
    if failure_mtbf is not None:
        _assert_fault_counters(tag, report, jdir, failures)
    # Resuming a drained journal must be a clean no-op.
    proc2 = _spawn(["--journal-dir", str(jdir), "--resume", "--quiet"])
    out2, _ = proc2.communicate(timeout=timeout)
    if proc2.returncode != 0:
        failures.append(f"{tag} resume: exit code {proc2.returncode}")
    else:
        report2 = _parse_report(out2)
        if not report2["already_drained"]:
            failures.append(f"{tag} resume: expected already_drained")
        if report2["admitted"] != report["admitted"]:
            failures.append(
                f"{tag} resume: admitted count changed "
                f"({report['admitted']} -> {report2['admitted']})"
            )
    if not failures:
        extra_note = (
            f", {report.get('failures_injected', 0)} node failures "
            f"({report.get('tasks_resubmitted', 0)} resubmissions)"
            if failure_mtbf is not None
            else ""
        )
        print(
            f"{tag} drain ok: SIGTERM after {report['admitted']} "
            f"admissions, {report['completed']} completed{extra_note}, "
            "exit 0, resume reports already drained"
        )
    return failures


def _check_crash_resume(
    workdir: Path,
    num_tasks: int,
    kill_after: int,
    timeout: float,
    failure_mtbf: Optional[float] = None,
) -> List[str]:
    failures: List[str] = []
    tag = "crash+failures" if failure_mtbf is not None else "crash"
    jdir = workdir / tag
    journal_path = jdir / JOURNAL_FILENAME
    extra = (
        ["--failure-mtbf", str(failure_mtbf), "--failure-mttr", "40"]
        if failure_mtbf is not None
        else []
    )
    proc = _spawn(
        [
            "--scheduler", "fcfs",
            "--num-tasks", str(num_tasks),
            "--arrival-rate", "0.4",
            "--max-queue", "64",
            "--journal-dir", str(jdir),
            "--quiet",
            *extra,
        ]
    )
    deadline = time.monotonic() + timeout
    try:
        while time.monotonic() < deadline:
            if journal_path.is_file() and len(_journal_admits(jdir)) >= kill_after:
                break
            if proc.poll() is not None:
                break
            time.sleep(0.02)
        if proc.poll() is not None:
            failures.append(
                f"{tag}: service finished before the kill point — "
                "raise --tasks or lower --kill-after"
            )
            proc.communicate()
            return failures
        proc.kill()  # SIGKILL: no drain, no marker, maybe a torn line
        proc.communicate()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    first_life = _journal_admits(jdir)
    if len(first_life) < kill_after:
        failures.append(
            f"{tag}: only {len(first_life)} admits journaled at kill time"
        )
    # No failure flags on resume: the journal's stored config must carry
    # the failure model into the second life on its own.
    proc2 = _spawn(["--journal-dir", str(jdir), "--resume", "--quiet"])
    out2, _ = proc2.communicate(timeout=timeout * 4)
    if proc2.returncode != 0:
        failures.append(
            f"{tag} resume: exit code {proc2.returncode}\n{out2}"
        )
        return failures
    report = _parse_report(out2)
    tids = _journal_admits(jdir)
    if sorted(tids) != list(range(num_tasks)):
        dupes = len(tids) - len(set(tids))
        failures.append(
            f"{tag} resume: admission not exactly-once "
            f"({len(tids)} admits, {dupes} duplicates, {num_tasks} expected)"
        )
    if report["admitted"] != num_tasks:
        failures.append(
            f"{tag} resume: report admitted {report['admitted']}, "
            f"expected {num_tasks}"
        )
    if report["completed"] != report["admitted"] - report["shed"]:
        failures.append(
            f"{tag} resume: completed {report['completed']} != admitted "
            f"{report['admitted']} - shed {report['shed']}"
        )
    if not report["resumed"]:
        failures.append(f"{tag} resume: report not marked as resumed")
    state = AdmissionJournal.load(jdir)
    if not state.drained:
        failures.append(f"{tag} resume: journal has no drained marker")
    if failure_mtbf is not None:
        _assert_fault_counters(f"{tag} resume", report, jdir, failures)
    if not failures:
        extra_note = (
            f", {report.get('failures_injected', 0)} node failures "
            f"({report.get('tasks_resubmitted', 0)} resubmissions)"
            if failure_mtbf is not None
            else ""
        )
        print(
            f"{tag} resume ok: killed after {len(first_life)} admissions, "
            f"resumed to {report['admitted']} exactly-once, "
            f"{report['completed']} completed{extra_note}"
        )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tasks", type=int, default=2000,
        help="stream length per phase (default: 2000)",
    )
    parser.add_argument(
        "--kill-after", type=int, default=200,
        help="journaled admissions before the SIGKILL (default: 200)",
    )
    parser.add_argument(
        "--timeout", type=float, default=120.0,
        help="per-phase timeout in seconds (default: 120)",
    )
    parser.add_argument(
        "--failure-mtbf", type=float, default=250.0,
        help="mean time between node failures for the fault-injection "
        "phases (simulated time; default: 250)",
    )
    parser.add_argument(
        "--dir", default=None, help="work dir (default: temp dir)"
    )
    args = parser.parse_args(argv)
    workdir = Path(args.dir) if args.dir else Path(tempfile.mkdtemp())

    failures = _check_graceful(workdir, args.tasks, args.timeout)
    failures += _check_crash_resume(
        workdir, args.tasks, args.kill_after, args.timeout
    )
    failures += _check_graceful(
        workdir, args.tasks, args.timeout, failure_mtbf=args.failure_mtbf
    )
    failures += _check_crash_resume(
        workdir, args.tasks, args.kill_after, args.timeout,
        failure_mtbf=args.failure_mtbf,
    )
    for message in failures:
        print(f"FAIL: {message}")
    if not failures:
        print(
            "service selfcheck ok: graceful drain + crash resume "
            "verified, with and without failure injection"
        )
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
