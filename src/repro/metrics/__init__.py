"""Performance and energy metrics for simulation runs.

AveRT (Eq. 4), success rate (rew_val/N), utilization-by-learning-cycles
(Figures 9–10), run-level assembly, and multi-seed statistics helpers.
"""

from .collector import RunMetrics, collect_metrics
from .response_time import (
    ResponseTimeSummary,
    average_response_time,
    summarize_response_times,
)
from .stats import MeanCI, mean_ci, relative_difference
from .fairness import SiteBreakdown, jains_index, per_site_breakdown
from .priority_report import (
    PriorityClassReport,
    priority_report,
    render_priority_report,
)
from .streaming import StreamingRunStats
from .success_rate import SuccessSummary, success_rate, summarize_success
from .timeline import TimelineRecorder, TimelineSample
from .utilization import UtilizationPoint, utilization_by_cycles

__all__ = [
    "RunMetrics",
    "collect_metrics",
    "ResponseTimeSummary",
    "average_response_time",
    "summarize_response_times",
    "StreamingRunStats",
    "SuccessSummary",
    "success_rate",
    "summarize_success",
    "UtilizationPoint",
    "utilization_by_cycles",
    "TimelineRecorder",
    "TimelineSample",
    "jains_index",
    "SiteBreakdown",
    "per_site_breakdown",
    "PriorityClassReport",
    "priority_report",
    "render_priority_report",
    "MeanCI",
    "mean_ci",
    "relative_difference",
]
