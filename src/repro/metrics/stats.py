"""Small statistics helpers for multi-seed experiment aggregation."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = ["MeanCI", "mean_ci", "relative_difference"]

#: Two-sided 95 % t critical values by degrees of freedom (1–30), then ~z.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179,
    13: 2.160, 14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101,
    19: 2.093, 20: 2.086, 21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064,
    25: 2.060, 26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}


@dataclass(frozen=True)
class MeanCI:
    """Sample mean with a 95 % confidence half-width."""

    mean: float
    half_width: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.3g} ± {self.half_width:.2g}"


def mean_ci(values: Sequence[float]) -> MeanCI:
    """95 % t-confidence interval for the mean of *values*.

    Raises
    ------
    ValueError
        If the sample is empty or contains a non-finite value (NaN or
        ±inf).  Multi-seed aggregation indexes samples by seed, so the
        error names the offending index instead of letting the NaN
        propagate silently into a figure table.
    """
    if len(values) == 0:
        raise ValueError("empty sample")
    arr = np.asarray(values, dtype=float)
    finite = np.isfinite(arr)
    if not finite.all():
        bad = int(np.flatnonzero(~finite)[0])
        raise ValueError(
            f"non-finite sample at index {bad} (seed index {bad}): "
            f"{arr[bad]!r} — refusing to aggregate into a mean/CI"
        )
    n = len(arr)
    mean = float(arr.mean())
    if n == 1:
        return MeanCI(mean=mean, half_width=0.0, n=1)
    sem = float(arr.std(ddof=1)) / math.sqrt(n)
    t = _T95.get(n - 1, 1.96)
    return MeanCI(mean=mean, half_width=t * sem, n=n)


def relative_difference(
    a: float, b: float, context: Optional[str] = None
) -> float:
    """``(a − b) / b`` — signed relative difference of *a* versus *b*.

    Parameters
    ----------
    a, b:
        The compared value and the reference value.
    context:
        Optional description of what is being compared (metric name,
        figure, comparison point).  A zero reference raises
        ``ValueError`` — the *context* is included in the message so
        the failure is attributable when it surfaces deep inside
        figure generation (e.g. an empty-workload energy aggregate).
    """
    if b == 0:
        detail = f" while computing {context}" if context else ""
        raise ValueError(
            f"reference value is zero{detail} (cannot take a relative "
            f"difference of {a!r} against 0)"
        )
    return (a - b) / b
