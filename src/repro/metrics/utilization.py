"""Utilization-versus-learning-cycle series (paper Figures 9–10).

The paper plots "utilisation rate" against "% learning cycles".  Each
scheduler logs a :class:`~repro.core.base.CycleSample` (cumulative busy
and powered processor-time) at the end of every learning cycle; this
module converts that log into windowed utilization at percentage-of-
cycles checkpoints: the utilization at the 30 % checkpoint is the busy
fraction *within* the window between the 20 % and 30 % checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.base import CycleSample

__all__ = ["UtilizationPoint", "utilization_by_cycles"]

#: The paper's x-axis checkpoints.
DEFAULT_CHECKPOINTS = (10, 20, 30, 40, 50, 60, 70, 80, 90, 100)


@dataclass(frozen=True)
class UtilizationPoint:
    """Windowed utilization at one %-of-learning-cycles checkpoint."""

    percent_cycles: int
    time: float
    utilization: float
    cumulative_utilization: float


def utilization_by_cycles(
    samples: Sequence[CycleSample],
    checkpoints: Sequence[int] = DEFAULT_CHECKPOINTS,
) -> list[UtilizationPoint]:
    """Windowed utilization at each checkpoint of the cycle log.

    Utilization in a window is Δbusy / Δpowered processor-time between
    consecutive checkpoints (exact, integrated by the energy meters); a
    window with no powered time reports 0.
    """
    if not samples:
        return []
    if any(not 0 < c <= 100 for c in checkpoints):
        raise ValueError("checkpoints must lie in (0, 100]")
    checkpoints = sorted(checkpoints)
    n = len(samples)
    points: list[UtilizationPoint] = []
    prev_busy = 0.0
    prev_powered = 0.0
    for pct in checkpoints:
        idx = max(0, min(n - 1, round(pct / 100 * n) - 1))
        sample = samples[idx]
        d_busy = sample.busy_time - prev_busy
        d_powered = sample.powered_time - prev_powered
        window_util = d_busy / d_powered if d_powered > 0 else 0.0
        cumulative = (
            sample.busy_time / sample.powered_time
            if sample.powered_time > 0
            else 0.0
        )
        points.append(
            UtilizationPoint(
                percent_cycles=pct,
                time=sample.time,
                utilization=window_util,
                cumulative_utilization=cumulative,
            )
        )
        prev_busy = sample.busy_time
        prev_powered = sample.powered_time
    return points
