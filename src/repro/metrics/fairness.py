"""Per-site breakdowns and load-balance fairness metrics.

The paper's multi-site model (one agent per resource site) raises an
obvious follow-up the evaluation never reports: how evenly the sites
share the work and whether any site's users are systematically worse
off.  This module provides Jain's fairness index over per-site loads and
a per-site metric breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..cluster.system import System
from ..workload.task import Task
from .response_time import summarize_response_times
from .success_rate import summarize_success

__all__ = ["jains_index", "SiteBreakdown", "per_site_breakdown"]


def jains_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(Σx)² / (n·Σx²)`` ∈ (0, 1].

    1 means perfectly even; 1/n means one participant takes everything.
    An all-zero allocation is defined as perfectly fair.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("empty allocation")
    if np.any(arr < 0):
        raise ValueError("allocations must be non-negative")
    denom = arr.size * float(np.sum(arr**2))
    if denom == 0:
        return 1.0
    return float(np.sum(arr)) ** 2 / denom


@dataclass(frozen=True)
class SiteBreakdown:
    """Per-site slice of a run's results."""

    site_id: str
    tasks_completed: int
    avert: float
    success_rate: float
    #: Per-site energy (sum of the site's node Ec values).
    energy: float
    busy_time: float


def per_site_breakdown(
    system: System, tasks: Sequence[Task]
) -> Mapping[str, SiteBreakdown]:
    """Slice run results by the site each task executed on.

    Tasks carry the executing site in their execution record; energy
    comes from the site's node meters.
    """
    by_site: dict[str, list[Task]] = {s.site_id: [] for s in system.sites}
    for t in tasks:
        if t.completed and t.site_id in by_site:
            by_site[t.site_id].append(t)

    out: dict[str, SiteBreakdown] = {}
    for site in system.sites:
        site_tasks = by_site[site.site_id]
        response = summarize_response_times(site_tasks)
        success = summarize_success(site_tasks)
        energies = [n.energy() for n in site.nodes]
        out[site.site_id] = SiteBreakdown(
            site_id=site.site_id,
            tasks_completed=len(site_tasks),
            avert=response.mean,
            success_rate=success.completed_rate,
            energy=sum(e.energy for e in energies),
            busy_time=sum(e.busy_time for e in energies),
        )
    return out
