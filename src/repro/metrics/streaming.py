"""O(1)-per-completion accumulation of run-level metrics.

End-of-run reporting used to rescan the full completion list for every
aggregate.  :class:`StreamingRunStats` maintains the scan-free subset —
integer deadline counters, the running makespan maximum, and running
response/wait sums — as tasks complete, so assembling
:class:`~repro.metrics.collector.RunMetrics` no longer grows with task
count for those fields.

Only order-insensitive accumulators live here: integer counts are exact
and ``max`` is associative, so the streamed values are bit-identical to
the batch rescans they replace.  Distributional statistics (median, p95)
need the full sample, so :meth:`StreamingRunStats.record` also appends
each completion's response/wait time to preallocated columnar logs
(:class:`~repro.sim.columnar.FloatColumn`); because appends happen in
completion order, the logged arrays carry the exact float64 values, in
the exact order, of the end-of-run rescan
``np.array([t.response_time for t in completed])`` — so
:meth:`StreamingRunStats.response_summary` is bit-identical to
:func:`~repro.metrics.response_time.summarize_response_times` without
the O(N) object walk.
"""

from __future__ import annotations

import numpy as np

from ..sim.columnar import FloatColumn
from ..workload.priorities import Priority
from ..workload.task import Task
from .response_time import ResponseTimeSummary
from .success_rate import SuccessSummary

__all__ = ["StreamingRunStats"]


class StreamingRunStats:
    """Incremental per-completion metric accumulator.

    Call :meth:`record` exactly once per completed task (the scheduler
    does this from its completion callback).  Tasks are recorded after
    ``mark_finished``, so every observed field is final.
    """

    __slots__ = (
        "completed",
        "hits",
        "makespan",
        "response_sum",
        "wait_sum",
        "response_log",
        "wait_log",
        "_per_priority",
    )

    def __init__(self) -> None:
        self.completed = 0
        #: Completions at or before their deadline (``rew_val``).
        self.hits = 0
        #: Latest finish time seen so far.
        self.makespan = 0.0
        self.response_sum = 0.0
        self.wait_sum = 0.0
        #: Columnar logs in completion order — the full sample the
        #: distributional summary needs, without rescanning tasks.
        self.response_log = FloatColumn()
        self.wait_log = FloatColumn()
        self._per_priority: dict[Priority, list[int]] = {
            prio: [0, 0] for prio in Priority
        }

    def record(self, task: Task) -> None:
        """Fold one completed *task* into the aggregates."""
        self.completed += 1
        met = task.met_deadline
        if met:
            self.hits += 1
        counts = self._per_priority[task.priority]
        counts[1] += 1
        if met:
            counts[0] += 1
        finish = task.finish_time
        if finish is not None and finish > self.makespan:
            self.makespan = finish
        response = task.response_time
        wait = task.waiting_time
        self.response_sum += response
        self.wait_sum += wait
        self.response_log.append(response)
        self.wait_log.append(wait)

    @property
    def mean_response(self) -> float:
        """Running ``AveRT`` (Eq. 4) over recorded completions."""
        return self.response_sum / self.completed if self.completed else 0.0

    def response_summary(self) -> ResponseTimeSummary:
        """Distributional summary over the streamed completion logs.

        Runs the same NumPy reductions, over the same float64 values in
        the same (completion) order, as
        :func:`~repro.metrics.response_time.summarize_response_times`
        applied to the completed-task list — so the result is
        bit-identical while skipping the per-task property walk.
        """
        if not self.completed:
            return ResponseTimeSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        rts = self.response_log.view()
        waits = self.wait_log.view()
        return ResponseTimeSummary(
            count=self.completed,
            mean=float(rts.mean()),
            median=float(np.median(rts)),
            p95=float(np.percentile(rts, 95)),
            maximum=float(rts.max()),
            mean_wait=float(waits.mean()),
            mean_execution=float((rts - waits).mean()),
        )

    def success_summary(self, submitted: int) -> SuccessSummary:
        """Deadline outcomes so far, against *submitted* total tasks."""
        return SuccessSummary(
            submitted=submitted,
            completed=self.completed,
            hits=self.hits,
            per_priority={
                prio: (counts[0], counts[1])
                for prio, counts in self._per_priority.items()
            },
        )
