"""O(1)-per-completion accumulation of run-level metrics.

End-of-run reporting used to rescan the full completion list for every
aggregate.  :class:`StreamingRunStats` maintains the scan-free subset —
integer deadline counters, the running makespan maximum, and running
response/wait sums — as tasks complete, so assembling
:class:`~repro.metrics.collector.RunMetrics` no longer grows with task
count for those fields.

Only order-insensitive accumulators live here: integer counts are exact
and ``max`` is associative, so the streamed values are bit-identical to
the batch rescans they replace.  Distributional statistics (median, p95)
still need the full sample and stay in
:mod:`~repro.metrics.response_time`.
"""

from __future__ import annotations

from ..workload.priorities import Priority
from ..workload.task import Task
from .success_rate import SuccessSummary

__all__ = ["StreamingRunStats"]


class StreamingRunStats:
    """Incremental per-completion metric accumulator.

    Call :meth:`record` exactly once per completed task (the scheduler
    does this from its completion callback).  Tasks are recorded after
    ``mark_finished``, so every observed field is final.
    """

    __slots__ = (
        "completed",
        "hits",
        "makespan",
        "response_sum",
        "wait_sum",
        "_per_priority",
    )

    def __init__(self) -> None:
        self.completed = 0
        #: Completions at or before their deadline (``rew_val``).
        self.hits = 0
        #: Latest finish time seen so far.
        self.makespan = 0.0
        self.response_sum = 0.0
        self.wait_sum = 0.0
        self._per_priority: dict[Priority, list[int]] = {
            prio: [0, 0] for prio in Priority
        }

    def record(self, task: Task) -> None:
        """Fold one completed *task* into the aggregates."""
        self.completed += 1
        met = task.met_deadline
        if met:
            self.hits += 1
        counts = self._per_priority[task.priority]
        counts[1] += 1
        if met:
            counts[0] += 1
        finish = task.finish_time
        if finish is not None and finish > self.makespan:
            self.makespan = finish
        self.response_sum += task.response_time
        self.wait_sum += task.waiting_time

    @property
    def mean_response(self) -> float:
        """Running ``AveRT`` (Eq. 4) over recorded completions."""
        return self.response_sum / self.completed if self.completed else 0.0

    def success_summary(self, submitted: int) -> SuccessSummary:
        """Deadline outcomes so far, against *submitted* total tasks."""
        return SuccessSummary(
            submitted=submitted,
            completed=self.completed,
            hits=self.hits,
            per_priority={
                prio: (counts[0], counts[1])
                for prio, counts in self._per_priority.items()
            },
        )
