"""Per-priority-class performance breakdown.

The TG technique treats priorities explicitly (§IV.D); this report makes
the per-class outcome visible: response time, waiting time, and deadline
success for high / medium / low priority tasks separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..workload.priorities import Priority
from ..workload.task import Task

__all__ = ["PriorityClassReport", "priority_report", "render_priority_report"]


@dataclass(frozen=True)
class PriorityClassReport:
    """Outcome summary for one priority class."""

    priority: Priority
    count: int
    avert: float
    mean_wait: float
    success_rate: float


def priority_report(
    tasks: Sequence[Task],
) -> Mapping[Priority, PriorityClassReport]:
    """Per-class breakdown over completed *tasks*."""
    out: dict[Priority, PriorityClassReport] = {}
    for prio in Priority:
        klass = [t for t in tasks if t.completed and t.priority is prio]
        if klass:
            rts = np.array([t.response_time for t in klass])
            waits = np.array([t.waiting_time for t in klass])
            hits = sum(1 for t in klass if t.met_deadline)
            out[prio] = PriorityClassReport(
                priority=prio,
                count=len(klass),
                avert=float(rts.mean()),
                mean_wait=float(waits.mean()),
                success_rate=hits / len(klass),
            )
        else:
            out[prio] = PriorityClassReport(
                priority=prio, count=0, avert=0.0, mean_wait=0.0, success_rate=0.0
            )
    return out


def render_priority_report(
    report: Mapping[Priority, PriorityClassReport]
) -> str:
    """Aligned ASCII table of a :func:`priority_report` result."""
    header = f"{'priority':>10}{'tasks':>8}{'AveRT':>10}{'wait':>8}{'success':>10}"
    lines = [header, "-" * len(header)]
    for prio in Priority:
        r = report[prio]
        lines.append(
            f"{prio.label:>10}{r.count:>8d}{r.avert:>10.1f}"
            f"{r.mean_wait:>8.1f}{r.success_rate:>10.1%}"
        )
    return "\n".join(lines)
