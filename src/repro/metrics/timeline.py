"""Periodic time-series recording of system state.

A :class:`TimelineRecorder` samples the platform at a fixed simulated
interval — instantaneous power draw, busy/sleeping processor counts,
pending work — producing the time series behind power-over-time plots
and post-hoc analysis that the cumulative energy meters cannot provide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster.system import System
from ..core.base import Scheduler
from ..energy.meter import ProcState
from ..sim.core import Environment

__all__ = ["TimelineSample", "TimelineRecorder"]


@dataclass(frozen=True)
class TimelineSample:
    """One snapshot of platform state."""

    time: float
    power_w: float
    busy_processors: int
    idle_processors: int
    sleeping_processors: int
    pending_tasks: int
    completed_tasks: int

    @property
    def total_processors(self) -> int:
        return (
            self.busy_processors
            + self.idle_processors
            + self.sleeping_processors
        )


class TimelineRecorder:
    """Samples the system every *interval* simulated time units."""

    def __init__(
        self,
        env: Environment,
        system: System,
        interval: float = 10.0,
        scheduler: Optional[Scheduler] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.env = env
        self.system = system
        self.interval = interval
        self.scheduler = scheduler
        self.samples: list[TimelineSample] = []
        env.process(self._loop())

    def sample_now(self) -> TimelineSample:
        """Take one snapshot at the current simulated time."""
        counts = {s: 0 for s in ProcState}
        power = 0.0
        for proc in self.system.processors:
            counts[proc.state] += 1
            power += proc.current_power_w
        sample = TimelineSample(
            time=self.env.now,
            power_w=power,
            busy_processors=counts[ProcState.BUSY],
            idle_processors=counts[ProcState.IDLE],
            sleeping_processors=counts[ProcState.SLEEP],
            pending_tasks=sum(n.pending_tasks for n in self.system.nodes),
            completed_tasks=(
                len(self.scheduler.completed) if self.scheduler else 0
            ),
        )
        self.samples.append(sample)
        return sample

    def _loop(self):
        while True:
            self.sample_now()
            yield self.env.timeout(self.interval)

    # -- analysis helpers ---------------------------------------------------
    def peak_power_w(self) -> float:
        """Highest sampled instantaneous draw."""
        if not self.samples:
            raise ValueError("no samples recorded")
        return max(s.power_w for s in self.samples)

    def mean_power_w(self) -> float:
        """Mean sampled draw (uniform sampling → time average)."""
        if not self.samples:
            raise ValueError("no samples recorded")
        return sum(s.power_w for s in self.samples) / len(self.samples)

    def ascii_power_plot(self, width: int = 60, height: int = 10) -> str:
        """Render the power series as a small ASCII chart."""
        if len(self.samples) < 2:
            return "(insufficient samples)"
        powers = [s.power_w for s in self.samples]
        lo, hi = min(powers), max(powers)
        span = hi - lo or 1.0
        # Downsample/bucket to the requested width.
        step = max(1, len(powers) // width)
        cols = [
            sum(powers[i : i + step]) / len(powers[i : i + step])
            for i in range(0, len(powers), step)
        ][:width]
        rows = []
        for level in range(height, 0, -1):
            threshold = lo + span * (level - 0.5) / height
            rows.append(
                "".join("#" if c >= threshold else " " for c in cols)
            )
        rows.append("-" * len(cols))
        rows.append(f"power: {lo:.0f}–{hi:.0f} W over t=[0, {self.samples[-1].time:.0f}]")
        return "\n".join(rows)
