"""Run-level metric assembly.

Gathers everything a single simulation run produces — AveRT (Eq. 4), the
system energy ``ECS``, deadline success, utilization-by-cycles series,
and the efficiency report — into one :class:`RunMetrics` value object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..cluster.system import System
from ..core.base import Scheduler
from ..energy.accounting import SystemEnergy
from ..energy.efficiency import EfficiencyReport, efficiency_report
from ..workload.task import Task
from .response_time import ResponseTimeSummary, summarize_response_times
from .success_rate import SuccessSummary, summarize_success
from .utilization import UtilizationPoint, utilization_by_cycles

__all__ = ["RunMetrics", "collect_metrics"]


@dataclass(frozen=True)
class RunMetrics:
    """All headline metrics for one completed simulation run."""

    scheduler: str
    num_tasks: int
    makespan: float
    response: ResponseTimeSummary
    success: SuccessSummary
    energy: SystemEnergy
    efficiency: EfficiencyReport
    utilization_series: Sequence[UtilizationPoint]
    learning_cycles: int

    @property
    def avert(self) -> float:
        """``AveRT`` (Eq. 4)."""
        return self.response.mean

    @property
    def ecs(self) -> float:
        """System energy ``ECS`` (Σ Ec)."""
        return self.energy.ecs

    @property
    def success_rate(self) -> float:
        """``rew_val / N`` over submitted tasks."""
        return self.success.rate

    @property
    def utilization(self) -> float:
        """Whole-run busy fraction of powered processor time."""
        return self.energy.utilization


def collect_metrics(
    scheduler: Scheduler, system: System, tasks: Sequence[Task]
) -> RunMetrics:
    """Assemble :class:`RunMetrics` at the end of a run.

    Call after the simulation has drained (every expected completion
    delivered); uses the environment's current time as the observation
    boundary.
    """
    completed = scheduler.completed
    stream = getattr(scheduler, "stream", None)
    if stream is not None and stream.completed == len(completed):
        # The scheduler accumulated these incrementally as tasks
        # finished (integer counts, a running max, and columnar
        # response/wait logs in completion order — bit-identical to
        # the rescans below, without the end-of-run O(N) passes).
        response = stream.response_summary()
        success = stream.success_summary(submitted=len(tasks))
        makespan = stream.makespan
    else:
        response = summarize_response_times(completed)
        success = summarize_success(completed, submitted=len(tasks))
        makespan = max(
            (t.finish_time for t in completed if t.completed), default=0.0
        )
    energy = system.energy()
    return RunMetrics(
        scheduler=scheduler.name,
        num_tasks=len(tasks),
        makespan=makespan,
        response=response,
        success=success,
        energy=energy,
        efficiency=efficiency_report(energy, response.count, response.mean),
        utilization_series=utilization_by_cycles(scheduler.cycle_log),
        learning_cycles=scheduler.learning_cycles,
    )
