"""Deadline-success metrics (paper §V, Experiment 3).

"successful rate (i.e., rew_val / N)" — the fraction of submitted tasks
that completed at or before their deadline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..workload.priorities import Priority
from ..workload.task import Task

__all__ = ["SuccessSummary", "success_rate", "summarize_success"]


@dataclass(frozen=True)
class SuccessSummary:
    """Deadline outcomes, overall and per priority class."""

    submitted: int
    completed: int
    hits: int
    per_priority: Mapping[Priority, tuple[int, int]]  # (hits, completed)

    @property
    def rate(self) -> float:
        """``rew_val / N`` over submitted tasks."""
        return self.hits / self.submitted if self.submitted else 0.0

    @property
    def completed_rate(self) -> float:
        """Hit fraction among completed tasks only."""
        return self.hits / self.completed if self.completed else 0.0

    def priority_rate(self, priority: Priority) -> float:
        hits, completed = self.per_priority.get(priority, (0, 0))
        return hits / completed if completed else 0.0


def success_rate(tasks: Iterable[Task], submitted: int | None = None) -> float:
    """Fraction of tasks meeting their deadline.

    With *submitted* given, the denominator is the submission count
    (the paper's definition); otherwise the completed count.
    """
    tasks = list(tasks)
    hits = sum(1 for t in tasks if t.completed and t.met_deadline)
    denom = submitted if submitted is not None else sum(1 for t in tasks if t.completed)
    if submitted is not None and submitted < 0:
        raise ValueError("submitted must be non-negative")
    return hits / denom if denom else 0.0


def summarize_success(
    tasks: Sequence[Task], submitted: int | None = None
) -> SuccessSummary:
    """Full success summary (overall + per priority class)."""
    done = [t for t in tasks if t.completed]
    hits = sum(1 for t in done if t.met_deadline)
    per: dict[Priority, tuple[int, int]] = {}
    for prio in Priority:
        klass = [t for t in done if t.priority == prio]
        per[prio] = (sum(1 for t in klass if t.met_deadline), len(klass))
    return SuccessSummary(
        submitted=submitted if submitted is not None else len(done),
        completed=len(done),
        hits=hits,
        per_priority=per,
    )
