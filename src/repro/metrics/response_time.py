"""Response-time metrics (paper Eq. 4).

``AveRT = (1/N) Σ (ET + wait_t)`` over the tasks submitted and completed
within the observation period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..workload.task import Task

__all__ = ["ResponseTimeSummary", "average_response_time", "summarize_response_times"]


@dataclass(frozen=True)
class ResponseTimeSummary:
    """Distributional summary of task response times."""

    count: int
    mean: float
    median: float
    p95: float
    maximum: float
    mean_wait: float
    mean_execution: float

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("count must be non-negative")


def average_response_time(tasks: Iterable[Task]) -> float:
    """Eq. 4 over completed *tasks*; 0 for an empty set."""
    total = 0.0
    n = 0
    for t in tasks:
        if t.completed:
            total += t.response_time
            n += 1
    return total / n if n else 0.0


def summarize_response_times(tasks: Sequence[Task]) -> ResponseTimeSummary:
    """Full response-time summary over completed *tasks*."""
    done = [t for t in tasks if t.completed]
    if not done:
        return ResponseTimeSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    rts = np.array([t.response_time for t in done])
    waits = np.array([t.waiting_time for t in done])
    return ResponseTimeSummary(
        count=len(done),
        mean=float(rts.mean()),
        median=float(np.median(rts)),
        p95=float(np.percentile(rts, 95)),
        maximum=float(rts.max()),
        mean_wait=float(waits.mean()),
        mean_execution=float((rts - waits).mean()),
    )
