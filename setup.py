"""Shim enabling ``python setup.py develop`` on offline hosts without wheel."""
from setuptools import setup

setup()
