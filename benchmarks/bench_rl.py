"""Micro-benchmarks of the Adaptive-RL learning core.

These time the learning-side hot paths — Q-value lookup/greedy
selection, shared-learning-memory queries, workload synthesis, and the
end-to-end Adaptive-RL learning cycle — so regressions in the RL fast
path are visible independently of the simulation kernel (which
``bench_kernel.py`` guards).

Besides the pytest-benchmark cases, the module is directly runnable as
the repo's RL-throughput gate:

    python benchmarks/bench_rl.py                  # measure + report
    python benchmarks/bench_rl.py --check          # fail on >20% regression
    python benchmarks/bench_rl.py --update-baseline

The headline numbers are **q_ops_per_sec** (Q-table update + greedy
selection operations per wall second over the Adaptive-RL state/action
space), **memory_ops_per_sec** (shared-memory record + best-experience
queries per wall second), **workload_tasks_per_sec** (synthetic tasks
generated per wall second), and **learning_cycles_per_sec** (Adaptive-RL
learning cycles driven per wall second through a full experiment).  The
committed reference snapshot in ``benchmarks/baselines/rl_baseline.json``
was captured on the pre-optimisation dict/scan implementations; CI
compares the current build against it with a 0.8x floor, mirroring the
kernel-bench gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

BASELINE_PATH = Path(__file__).parent / "baselines" / "rl_baseline.json"
OUT_PATH = Path(__file__).parent / "out" / "rl_throughput.json"

#: Shape of the end-to-end experiment (mirrors the golden-seed config).
SIM_CONFIG = dict(
    scheduler="adaptive-rl", seed=11, num_tasks=300, arrival_period=600.0
)

#: Headline keys compared against the committed baseline (higher=better).
HEADLINES = (
    "q_ops_per_sec",
    "memory_ops_per_sec",
    "workload_tasks_per_sec",
    "learning_cycles_per_sec",
)


# ---------------------------------------------------------------------------
# Q-table update + greedy-selection throughput
# ---------------------------------------------------------------------------

def _make_value_model():
    """The tabular value model exactly as the Adaptive-RL agent uses it."""
    from repro.core.actions import action_space
    from repro.core.value_models import TabularValueModel

    actions = action_space(6)  # 2 modes x opnum 1..6 = 12 actions
    try:
        model = TabularValueModel(alpha=0.2, gamma=0.6, actions=actions)
    except TypeError:  # pre-fast-path signature (dict backend only)
        model = TabularValueModel(alpha=0.2, gamma=0.6)
    return model, actions


def _q_workload(table, actions, rounds: int) -> int:
    """Mixed update / greedy / lookup traffic over the ternary state cube.

    Returns the number of Q operations performed (the unit of the
    ``q_ops_per_sec`` headline).  The access pattern mirrors a learning
    cycle: observe (values + best_action), learn (update with a
    bootstrapped next state).
    """
    states = [(a, b, c) for a in range(3) for b in range(3) for c in range(3)]
    n_actions = len(actions)
    ops = 0
    for r in range(rounds):
        for i, state in enumerate(states):
            action = actions[(r + i) % n_actions]
            next_state = states[(i + 7) % len(states)]
            table.values(state, actions)
            table.best_action(state, actions)
            table.update(
                state,
                action,
                reward=float((r * 31 + i) % 11) - 5.0,
                next_state=next_state,
                next_actions=actions,
            )
            table.best_value(next_state, actions)
            ops += 4
    return ops


def measure_q_ops(rounds: int = 400, repeats: int = 5) -> dict:
    """Best-of-*repeats* Q-table operations per wall second."""
    best = float("inf")
    ops = 0
    for _ in range(repeats):
        model, actions = _make_value_model()
        t0 = time.perf_counter()
        ops = _q_workload(model.table, actions, rounds)
        best = min(best, time.perf_counter() - t0)
    return {
        "backend": type(model.table).__name__,
        "ops": ops,
        "seconds": round(best, 6),
        "q_ops_per_sec": round(ops / best, 1),
    }


# ---------------------------------------------------------------------------
# Shared-learning-memory throughput
# ---------------------------------------------------------------------------

def _memory_workload(memory, rounds: int) -> int:
    """Record + query traffic shaped like the SS IV.C decision loop.

    Each round records one experience per agent and issues the same
    memory queries the agent issues per feedback/selection: a
    state-scoped ``best_experience``, a global ``best_action``, and the
    telemetry ``len()`` probe.
    """
    from repro.core.actions import GroupingAction, GroupingMode
    from repro.core.shared_memory import Experience

    states = [(a, b, c) for a in range(3) for b in range(3) for c in range(3)]
    agents = [f"agent.site{i:02d}" for i in range(32)]
    modes = (GroupingMode.MIXED, GroupingMode.IDENTICAL)
    ops = 0
    for r in range(rounds):
        for i, agent_id in enumerate(agents):
            k = r * len(agents) + i
            state = states[k % len(states)]
            memory.record(
                Experience(
                    agent_id=agent_id,
                    cycle=r,
                    state=state,
                    action=GroupingAction(modes[k % 2], 1 + k % 6),
                    l_val=float((k * 37) % 101) / 7.0,
                    reward=k % 5,
                    error=float(k % 13),
                    time=float(k),
                )
            )
            memory.best_experience(states[(k + 5) % len(states)])
            memory.best_action()
            len(memory)
            ops += 4
    return ops


def measure_memory_ops(rounds: int = 120, repeats: int = 5) -> dict:
    """Best-of-*repeats* shared-memory operations per wall second."""
    from repro.core.shared_memory import SharedLearningMemory

    best = float("inf")
    ops = 0
    for _ in range(repeats):
        memory = SharedLearningMemory()
        t0 = time.perf_counter()
        ops = _memory_workload(memory, rounds)
        best = min(best, time.perf_counter() - t0)
    return {
        "ops": ops,
        "seconds": round(best, 6),
        "memory_ops_per_sec": round(ops / best, 1),
    }


# ---------------------------------------------------------------------------
# Workload-generation throughput
# ---------------------------------------------------------------------------

def measure_workload(num_tasks: int = 200_000, repeats: int = 5) -> dict:
    """Best-of-*repeats* synthetic tasks generated per wall second."""
    from repro.sim.rng import RandomStreams
    from repro.workload.generator import WorkloadGenerator, WorkloadSpec

    spec = WorkloadSpec(num_tasks=num_tasks)
    best = float("inf")
    for _ in range(repeats):
        gen = WorkloadGenerator(spec, RandomStreams(seed=7))
        t0 = time.perf_counter()
        tasks = gen.generate()
        best = min(best, time.perf_counter() - t0)
    assert len(tasks) == num_tasks
    return {
        "tasks": num_tasks,
        "seconds": round(best, 6),
        "workload_tasks_per_sec": round(num_tasks / best, 1),
    }


# ---------------------------------------------------------------------------
# End-to-end Adaptive-RL simulation wallclock
# ---------------------------------------------------------------------------

def measure_sim(repeats: int = 3) -> dict:
    """Learning cycles per wall second through a full Adaptive-RL run."""
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import run_experiment

    config = ExperimentConfig(**SIM_CONFIG)
    best = float("inf")
    cycles = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = run_experiment(config)
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
            cycles = result.scheduler.learning_cycles
    return {
        "config": dict(SIM_CONFIG),
        "cycles": cycles,
        "seconds": round(best, 6),
        "learning_cycles_per_sec": round(cycles / best, 1),
    }


# ---------------------------------------------------------------------------
# pytest-benchmark cases (picked up by benchmarks/conftest.py)
# ---------------------------------------------------------------------------

def bench_rl_q_table_ops(benchmark):
    """Update + greedy selection over the ternary state cube."""
    model, actions = _make_value_model()
    assert benchmark(lambda: _q_workload(model.table, actions, rounds=50)) > 0


def bench_rl_shared_memory_ops(benchmark):
    """Record + best-experience queries across 32 agent rings."""
    from repro.core.shared_memory import SharedLearningMemory

    memory = SharedLearningMemory()
    assert benchmark(lambda: _memory_workload(memory, rounds=20)) > 0


def bench_rl_workload_generation(benchmark):
    """Synthesize a 50k-task workload from one seed."""
    from repro.sim.rng import RandomStreams
    from repro.workload.generator import WorkloadGenerator, WorkloadSpec

    spec = WorkloadSpec(num_tasks=50_000)

    def run():
        return len(WorkloadGenerator(spec, RandomStreams(seed=7)).generate())

    assert benchmark(run) == 50_000


# ---------------------------------------------------------------------------
# Runnable throughput gate
# ---------------------------------------------------------------------------

def run_throughput() -> dict:
    """Measure every headline and write them to ``benchmarks/out``."""
    payload = {
        "q_table": measure_q_ops(),
        "shared_memory": measure_memory_ops(),
        "workload": measure_workload(),
        "simulation": measure_sim(),
    }
    payload["q_ops_per_sec"] = payload["q_table"]["q_ops_per_sec"]
    payload["memory_ops_per_sec"] = payload["shared_memory"][
        "memory_ops_per_sec"
    ]
    payload["workload_tasks_per_sec"] = payload["workload"][
        "workload_tasks_per_sec"
    ]
    payload["learning_cycles_per_sec"] = payload["simulation"][
        "learning_cycles_per_sec"
    ]
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(payload, indent=1))
    return payload


def check_against_baseline(payload: dict, min_ratio: float = 0.8) -> list[str]:
    """Compare *payload* to the committed baseline.

    Returns a list of human-readable failures (empty = pass).  A headline
    below ``min_ratio x baseline`` is a regression; the committed
    baseline predates the RL fast path, so healthy builds should sit far
    above 1.0x.
    """
    if not BASELINE_PATH.exists():
        return [f"no committed baseline at {BASELINE_PATH}"]
    baseline = json.loads(BASELINE_PATH.read_text())
    failures = []
    for key in HEADLINES:
        ref = baseline[key]
        cur = payload[key]
        ratio = cur / ref if ref else float("inf")
        line = f"{key}: {cur:,.0f} vs baseline {ref:,.0f} ({ratio:.2f}x)"
        print(line)
        if ratio < min_ratio:
            failures.append(f"regression: {line} < {min_ratio:.2f}x floor")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed baseline; exit 1 on regression",
    )
    parser.add_argument(
        "--min-ratio", type=float, default=0.8,
        help="regression floor as a fraction of baseline (default 0.8)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the committed baseline from this run",
    )
    args = parser.parse_args(argv)

    payload = run_throughput()
    print(json.dumps(payload, indent=1))
    if args.update_baseline:
        BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
        BASELINE_PATH.write_text(json.dumps(payload, indent=1))
        print(f"baseline updated: {BASELINE_PATH}")
    if args.check:
        failures = check_against_baseline(payload, args.min_ratio)
        for failure in failures:
            print(failure, file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
