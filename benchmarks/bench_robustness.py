"""Workload-robustness bench (extension).

The paper evaluates only Poisson/uniform workloads (§V.A).  This bench
checks that Adaptive-RL's headline win over Online RL survives four
realistic perturbations: bursty MMPP(2) arrivals, heavy-tailed
(bounded-Pareto) task sizes, sinusoidal day/night (diurnal) arrival
cycles, and a frozen SWF job-log replay.
"""

from pathlib import Path

from repro.experiments import ExperimentConfig, run_experiment

from .conftest import BENCH_SEEDS

SWF_TRACE = (
    Path(__file__).resolve().parents[1]
    / "src/repro/workload/scenarios/swf-excerpt/trace.jsonl"
)

SCENARIOS = {
    "paper (poisson/uniform)": {},
    "bursty (MMPP2 x6)": {"arrival_process": "mmpp", "mmpp_burstiness": 6.0},
    "heavy-tail (pareto a=1.2)": {
        "size_distribution": "bounded-pareto",
        "pareto_alpha": 1.2,
    },
    "diurnal (amp 0.9)": {
        "arrival_process": "diurnal",
        "diurnal_amplitude": 0.9,
        "diurnal_period": 300.0,
    },
}


def bench_robustness_workloads(once):
    def run_all():
        results = {}
        for label, overrides in SCENARIOS.items():
            for name in ("adaptive-rl", "online-rl"):
                cfg = ExperimentConfig(
                    scheduler=name,
                    num_tasks=1500,
                    seed=BENCH_SEEDS[0],
                    arrival_period=1500.0,  # keep it loaded
                    workload_overrides=overrides,
                )
                results[(label, name)] = run_experiment(cfg).metrics
        # Trace replay: both schedulers see the *same* frozen input, so
        # the comparison isolates policy, not workload sampling.
        for name in ("adaptive-rl", "online-rl"):
            cfg = ExperimentConfig(
                scheduler=name,
                num_tasks=1500,  # ignored: the trace fixes the task set
                seed=BENCH_SEEDS[0],
                workload_trace=str(SWF_TRACE),
            )
            results[("swf replay (108 jobs)", name)] = run_experiment(cfg).metrics
        return results

    results = once(run_all)
    print()
    print(f"{'scenario':28s}{'scheduler':14s}{'AveRT':>9}{'ECS(M)':>9}{'succ':>7}")
    for (label, name), m in results.items():
        print(
            f"{label:28s}{name:14s}{m.avert:>9.1f}{m.ecs / 1e6:>9.3f}"
            f"{m.success_rate:>7.1%}"
        )
    for label in list(SCENARIOS) + ["swf replay (108 jobs)"]:
        adaptive = results[(label, "adaptive-rl")]
        online = results[(label, "online-rl")]
        # The response-time win must survive every workload shape.  The
        # SWF excerpt is only 108 jobs, so its ratio is noisier than the
        # 1500-task synthetic sweeps; give it a wider (but still small)
        # band rather than dropping the check.
        avert_band = 1.10 if label.startswith("swf") else 1.05
        assert adaptive.avert <= online.avert * avert_band, label
        # Energy stays in the "comparable" band.
        assert adaptive.ecs <= online.ecs * 1.15, label
