"""Workload-robustness bench (extension).

The paper evaluates only Poisson/uniform workloads (§V.A).  This bench
checks that Adaptive-RL's headline win over Online RL survives two
realistic perturbations: bursty MMPP(2) arrivals and heavy-tailed
(bounded-Pareto) task sizes.
"""

from repro.experiments import ExperimentConfig, run_experiment

from .conftest import BENCH_SEEDS

SCENARIOS = {
    "paper (poisson/uniform)": {},
    "bursty (MMPP2 x6)": {"arrival_process": "mmpp", "mmpp_burstiness": 6.0},
    "heavy-tail (pareto a=1.2)": {
        "size_distribution": "bounded-pareto",
        "pareto_alpha": 1.2,
    },
}


def bench_robustness_workloads(once):
    def run_all():
        results = {}
        for label, overrides in SCENARIOS.items():
            for name in ("adaptive-rl", "online-rl"):
                cfg = ExperimentConfig(
                    scheduler=name,
                    num_tasks=1500,
                    seed=BENCH_SEEDS[0],
                    arrival_period=1500.0,  # keep it loaded
                    workload_overrides=overrides,
                )
                results[(label, name)] = run_experiment(cfg).metrics
        return results

    results = once(run_all)
    print()
    print(f"{'scenario':28s}{'scheduler':14s}{'AveRT':>9}{'ECS(M)':>9}{'succ':>7}")
    for (label, name), m in results.items():
        print(
            f"{label:28s}{name:14s}{m.avert:>9.1f}{m.ecs / 1e6:>9.3f}"
            f"{m.success_rate:>7.1%}"
        )
    for label in SCENARIOS:
        adaptive = results[(label, "adaptive-rl")]
        online = results[(label, "online-rl")]
        # The response-time win must survive every workload shape.
        assert adaptive.avert <= online.avert * 1.05, label
        # Energy stays in the "comparable" band.
        assert adaptive.ecs <= online.ecs * 1.15, label
