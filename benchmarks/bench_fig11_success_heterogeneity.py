"""Figure 11 bench: Adaptive-RL success rate vs resource heterogeneity.

Asserts the paper's shape: >70 % of tasks meet their deadline on average,
success declines as heterogeneity grows, and the lightly loaded state
succeeds at least as often as the heavily loaded one.
"""

from repro.experiments import figure11, render_figure, shape_checks

from .conftest import BENCH_H_LEVELS, BENCH_HEAVY, BENCH_LIGHT, BENCH_SEEDS


def bench_fig11_success_heterogeneity(once):
    fig = once(
        figure11,
        BENCH_H_LEVELS,
        BENCH_SEEDS,
        BENCH_LIGHT,
        BENCH_HEAVY,
    )
    print()
    print(render_figure(fig))
    checks = shape_checks(fig)
    for c in checks:
        print(c)
    assert all(c.passed for c in checks), "Figure 11 shape regression"
