"""Figure 8 bench: system energy consumption (ECS) vs number of tasks.

Asserts the paper's shape: energy grows with load; Online RL is within a
few percent of Adaptive-RL ("comparable"); Adaptive-RL's energy is at or
below every baseline's at the heavy end.
"""

from repro.experiments import figure8, render_figure, shape_checks

from .conftest import BENCH_SEEDS, BENCH_TASK_COUNTS


def bench_fig08_energy(once):
    fig = once(figure8, BENCH_TASK_COUNTS, BENCH_SEEDS)
    print()
    print(render_figure(fig))
    checks = shape_checks(fig)
    for c in checks:
        print(c)
    assert all(c.passed for c in checks), "Figure 8 shape regression"
