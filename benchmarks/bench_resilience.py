"""Failure-resilience bench (extension; paper §I motivates reliability).

Runs Adaptive-RL under crash-stop failure injection at increasing
failure rates and asserts graceful degradation: every task still
completes exactly once (the resubmission invariant), and quality
degrades monotonically-ish rather than collapsing.
"""

from repro.experiments import ExperimentConfig, run_experiment

from .conftest import BENCH_SEEDS

RATES = {
    "no failures": None,
    "rare (MTBF 2000)": 2000.0,
    "frequent (MTBF 500)": 500.0,
}


def bench_resilience_failure_rates(once):
    def run_all():
        results = {}
        for label, mtbf in RATES.items():
            cfg = ExperimentConfig(
                scheduler="adaptive-rl",
                num_tasks=600,
                seed=BENCH_SEEDS[0],
                failure_mtbf=mtbf,
                failure_mttr=50.0,
            )
            results[label] = run_experiment(cfg)
        return results

    results = once(run_all)
    print()
    print(f"{'scenario':24s}{'AveRT':>10}{'success':>10}{'resubmitted':>13}")
    for label, r in results.items():
        m = r.metrics
        print(
            f"{label:24s}{m.avert:>10.1f}{m.success_rate:>10.1%}"
            f"{r.scheduler.tasks_resubmitted:>13d}"
        )
    for label, r in results.items():
        # Exactly-once completion despite crashes.
        assert len(r.scheduler.completed) == 600, label
        assert len({t.tid for t in r.scheduler.completed}) == 600, label
    clean = results["no failures"].metrics
    frequent = results["frequent (MTBF 500)"].metrics
    assert results["frequent (MTBF 500)"].scheduler.tasks_resubmitted > 0
    # Failures hurt but do not deadlock or explode unboundedly.
    assert frequent.avert < clean.avert * 5
