"""Figure 12 bench: Adaptive-RL energy consumption vs heterogeneity.

Asserts the paper's shape: heterogeneity does not significantly hamper
energy efficiency, and the heavy state consumes several times the light
state's energy.
"""

from repro.experiments import figure12, render_figure, shape_checks

from .conftest import BENCH_H_LEVELS, BENCH_HEAVY, BENCH_LIGHT, BENCH_SEEDS


def bench_fig12_energy_heterogeneity(once):
    fig = once(
        figure12,
        BENCH_H_LEVELS,
        BENCH_SEEDS,
        BENCH_LIGHT,
        BENCH_HEAVY,
    )
    print()
    print(render_figure(fig))
    checks = shape_checks(fig)
    for c in checks:
        print(c)
    assert all(c.passed for c in checks), "Figure 12 shape regression"
