"""Figure 10 bench: utilization vs % learning cycles, lightly loaded."""

from repro.experiments import figure10, render_figure, shape_checks

from .conftest import BENCH_LIGHT


def bench_fig10_utilization_light(once):
    fig = once(figure10, BENCH_LIGHT, 1)
    print()
    print(render_figure(fig))
    checks = shape_checks(fig)
    for c in checks:
        print(c)
    assert all(c.passed for c in checks), "Figure 10 shape regression"
