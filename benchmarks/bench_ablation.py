"""Ablation benches for the design choices DESIGN.md calls out.

Each bench toggles one Adaptive-RL mechanism and reports the resulting
AveRT / ECS / success-rate deltas:

- task grouping (the TG technique, §IV.D) on/off;
- shared-learning memory (§III.B) on/off;
- tabular vs neural value model (DESIGN.md A6);
- processor power gating (substitution A7) on/off — the literal Eq. 5
  platform;
- task-to-site routing policy (DESIGN.md A4).
"""

from repro.cluster import SleepPolicy
from repro.experiments import ExperimentConfig, default_platform
from repro.experiments.sweeps import ablation_table, sweep

from .conftest import BENCH_SEEDS

ABLATION_TASKS = 1200
ABLATION_PERIOD = 1200.0  # keeps the ablation point under real load


def _base() -> ExperimentConfig:
    return ExperimentConfig(
        scheduler="adaptive-rl",
        num_tasks=ABLATION_TASKS,
        arrival_period=ABLATION_PERIOD,
    )


def bench_ablation_grouping(once):
    points = once(
        sweep,
        _base(),
        {
            "tg-on (paper)": lambda c: c,
            "tg-off": lambda c: c.with_overrides(
                scheduler_kwargs={"grouping_enabled": False}
            ),
        },
        BENCH_SEEDS,
    )
    print()
    print(ablation_table(points))
    on, off = points["tg-on (paper)"], points["tg-off"]
    # Grouping must not hurt response time under load and should not
    # spend more energy.
    assert on.avert.mean <= off.avert.mean * 1.10
    assert on.ecs.mean <= off.ecs.mean * 1.10


def bench_ablation_shared_memory(once):
    points = once(
        sweep,
        _base(),
        {
            "memory-on (paper)": lambda c: c,
            "memory-off": lambda c: c.with_overrides(
                scheduler_kwargs={"shared_memory_enabled": False}
            ),
        },
        BENCH_SEEDS,
    )
    print()
    print(ablation_table(points))
    on = points["memory-on (paper)"]
    assert on.success_rate.mean > 0.6


def bench_ablation_value_model(once):
    points = once(
        sweep,
        _base(),
        {
            "tabular (default)": lambda c: c,
            "neural (A6)": lambda c: c.with_overrides(
                scheduler_kwargs={"value_model": "neural"}
            ),
        },
        BENCH_SEEDS,
    )
    print()
    print(ablation_table(points))
    # Both variants must be functional and land in the same ballpark.
    tab, neu = points["tabular (default)"], points["neural (A6)"]
    assert neu.avert.mean < tab.avert.mean * 1.5
    assert neu.ecs.mean < tab.ecs.mean * 1.5


def bench_ablation_sleep(once):
    no_sleep_platform = default_platform(
        sleep_policy=SleepPolicy(allow_sleep=False)
    )
    points = once(
        sweep,
        _base(),
        {
            "gating-on (A7)": lambda c: c,
            "gating-off (literal Eq.5)": lambda c: c.with_overrides(
                platform=no_sleep_platform
            ),
        },
        BENCH_SEEDS,
    )
    print()
    print(ablation_table(points))
    on = points["gating-on (A7)"]
    off = points["gating-off (literal Eq.5)"]
    # Power gating must save energy on the same workload.
    assert on.ecs.mean < off.ecs.mean


def bench_ablation_split(once):
    """Split (§IV.D.2) vs gang execution: idle processors stealing tasks
    from the next queued group must not hurt response time."""
    gang_platform = default_platform(split_enabled=False)
    points = once(
        sweep,
        _base(),
        {
            "split-on (paper)": lambda c: c,
            "split-off (gang)": lambda c: c.with_overrides(
                platform=gang_platform
            ),
        },
        BENCH_SEEDS,
    )
    print()
    print(ablation_table(points))
    on, off = points["split-on (paper)"], points["split-off (gang)"]
    assert on.avert.mean <= off.avert.mean * 1.05


def bench_ablation_dvfs(once):
    """DVFS extension: the governor trades response time for energy while
    keeping deadlines safe (see repro.core.dvfs)."""
    points = once(
        sweep,
        ExperimentConfig(scheduler="adaptive-rl", num_tasks=600),
        {
            "dvfs-off (paper)": lambda c: c,
            "dvfs-on (extension)": lambda c: c.with_overrides(
                scheduler_kwargs={"dvfs_enabled": True}
            ),
        },
        BENCH_SEEDS,
    )
    print()
    print(ablation_table(points))
    off, on = points["dvfs-off (paper)"], points["dvfs-on (extension)"]
    assert on.ecs.mean <= off.ecs.mean * 1.02
    assert on.success_rate.mean > 0.9


def bench_ablation_priority_mix(once):
    """§V.A: "The probabilities of three different task priorities are
    varied in different experiments" — sensitivity of Adaptive-RL to the
    priority mix."""
    points = once(
        sweep,
        _base(),
        {
            "uniform mix": lambda c: c,
            "high-heavy (60/30/10)": lambda c: c.with_overrides(
                priority_mix=(0.6, 0.3, 0.1)
            ),
            "low-heavy (10/30/60)": lambda c: c.with_overrides(
                priority_mix=(0.1, 0.3, 0.6)
            ),
        },
        BENCH_SEEDS,
    )
    print()
    print(ablation_table(points))
    # A low-heavy mix has generous deadlines: success must not decline
    # relative to the high-heavy mix.
    assert (
        points["low-heavy (10/30/60)"].success_rate.mean
        >= points["high-heavy (60/30/10)"].success_rate.mean - 0.05
    )


def bench_ablation_routing(once):
    points = once(
        sweep,
        _base(),
        {
            "least-loaded (default)": lambda c: c,
            "round-robin": lambda c: c.with_overrides(
                scheduler_kwargs={"routing": "round-robin"}
            ),
            "random": lambda c: c.with_overrides(
                scheduler_kwargs={"routing": "random"}
            ),
        },
        BENCH_SEEDS,
    )
    print()
    print(ablation_table(points))
    # All routing policies must complete the workload with usable quality.
    for p in points.values():
        assert p.success_rate.mean > 0.5
