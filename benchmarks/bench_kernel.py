"""Micro-benchmarks of the discrete-event simulation kernel.

These time the substrate itself (event throughput, process switching,
store operations) so regressions in the kernel are visible independently
of the scheduling experiments.

Besides the pytest-benchmark cases, the module is directly runnable as
the repo's kernel-throughput gate:

    python benchmarks/bench_kernel.py                  # measure + report
    python benchmarks/bench_kernel.py --check          # fail on >20% regression
    python benchmarks/bench_kernel.py --update-baseline

The headline numbers are **events/sec** (kernel events processed per
wall second across a mixed timeout / process-switch / store-contention
workload) and **decisions/sec** (scheduler passes driven per wall second
through a full Adaptive-RL experiment).  A committed reference snapshot
lives in ``benchmarks/baselines/kernel_baseline.json``; CI compares the
current build against it.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.obs import NULL_TELEMETRY, capture
from repro.sim import Environment, Store


def bench_kernel_timeout_throughput(benchmark):
    """Schedule and drain 20k bare timeouts."""

    def run():
        env = Environment()
        for i in range(20_000):
            env.timeout(i % 97)
        env.run()
        return env.now

    result = benchmark(run)
    assert result == 96


def bench_kernel_timeout_throughput_null_recorder(benchmark):
    """The 20k-timeout drain with the null telemetry passed explicitly.

    Must track ``bench_kernel_timeout_throughput`` to within noise — the
    null path is one attribute check per event; compare the two
    trajectories to see the disabled-telemetry overhead.
    """

    def run():
        env = Environment(telemetry=NULL_TELEMETRY)
        for i in range(20_000):
            env.timeout(i % 97)
        env.run()
        return env.now

    result = benchmark(run)
    assert result == 96


def bench_kernel_timeout_throughput_instrumented(benchmark):
    """The 20k-timeout drain with live metrics collection.

    The gap between this and the null-recorder case is the cost of the
    per-event counter/gauge updates when observability is armed.
    """

    def run():
        tel = capture(trace=False, metrics=True)
        env = Environment(telemetry=tel)
        for i in range(20_000):
            env.timeout(i % 97)
        env.run()
        assert tel.metrics.get("sim.events_processed").value == 20_000
        return env.now

    result = benchmark(run)
    assert result == 96


def bench_kernel_process_switching(benchmark):
    """Two processes ping-pong through a rendezvous store 5k times."""

    def run():
        env = Environment()
        a_to_b = Store(env, capacity=1)
        b_to_a = Store(env, capacity=1)
        count = 5000

        def ping(env):
            for i in range(count):
                yield a_to_b.put(i)
                yield b_to_a.get()

        def pong(env):
            for _ in range(count):
                item = yield a_to_b.get()
                yield b_to_a.put(item)

        env.process(ping(env))
        env.process(pong(env))
        env.run()
        return count

    assert benchmark(run) == 5000


def bench_kernel_many_processes(benchmark):
    """1k concurrent clock processes, 20 ticks each."""

    def run():
        env = Environment()
        done = []

        def clock(env, period):
            for _ in range(20):
                yield env.timeout(period)
            done.append(period)

        for i in range(1000):
            env.process(clock(env, 1.0 + (i % 7) * 0.1))
        env.run()
        return len(done)

    assert benchmark(run) == 1000


def bench_kernel_store_contention(benchmark):
    """100 producers and 100 consumers over one bounded store."""

    def run():
        env = Environment()
        store = Store(env, capacity=8)
        got = []

        def producer(env, k):
            for i in range(20):
                yield env.timeout(0.01 * (k % 5))
                yield store.put((k, i))

        def consumer(env):
            while True:
                got.append((yield store.get()))

        for k in range(100):
            env.process(producer(env, k))
        for _ in range(100):
            env.process(consumer(env))
        env.run(until=1000.0)
        return len(got)

    assert benchmark(run) == 2000


# ---------------------------------------------------------------------------
# Runnable throughput gate (events/sec, decisions/sec vs committed baseline)
# ---------------------------------------------------------------------------

BASELINE_PATH = Path(__file__).parent / "baselines" / "kernel_baseline.json"
#: Frozen snapshot from before the struct-of-arrays kernel work; kept so
#: the SoA speedup (events/sec vs the scalar hot loop) stays measurable
#: after ``--update-baseline`` raises the regression floor.
PRE_SOA_BASELINE_PATH = (
    Path(__file__).parent / "baselines" / "kernel_baseline_pre_soa.json"
)
OUT_PATH = Path(__file__).parent / "out" / "kernel_throughput.json"

#: Shape of the decisions/sec experiment (mirrors the golden-seed config).
DECISION_CONFIG = dict(
    scheduler="adaptive-rl", seed=11, num_tasks=300, arrival_period=600.0
)


def _scenario_timeouts(env: Environment) -> None:
    """Bulk timeout create + drain at large-scale pending-event counts.

    100k in-flight timeouts over ~10k distinct fire times — the shape of
    a cluster simulation with thousands of tasks in service at once.
    """
    for i in range(100_000):
        env.timeout(i % 9_973)
    env.run()


#: Simulated-time extent of each scenario's real work, used as the
#: sampler horizon under ``--with-sampler``.  A horizon past the last
#: event would keep the self-rescheduling tick alive in an otherwise
#: empty queue, timing phantom samples no real run would take.
_SCENARIO_HORIZONS = {
    "timeouts": 9_973.0,        # ~199 live ticks at the default cadence
    "pingpong": 1.0,            # zero-delay: all work at t=0
    "many_processes": 33.0,     # 20 ticks x max period 1.6
    "soa_ticks": 10_000.0,      # full extent of the columnar tick span
}

#: Tick and timeout volume of the ``soa_ticks`` scenario.
_SOA_TICKS = 1_000_000
_SOA_TIMEOUTS = 200


def _scenario_soa_ticks(env: Environment) -> None:
    """1M clock ticks via columnar batches, chunk-drained by timeouts.

    :meth:`Environment.schedule_ticks` stores the ticks as one sorted
    float64 array (:class:`~repro.sim.columnar.TickBatch`); the run loop
    drains them with ``np.searchsorted`` instead of per-event heap
    traffic.  The interleaved timeouts (one every 50 time units) bound
    each drain to ~5k ticks, so the measurement exercises the chunked
    fast path a real telemetry/metering cadence produces — not one
    degenerate whole-array skip.
    """
    env.schedule_ticks(np.linspace(0.0, 10_000.0, _SOA_TICKS))
    for i in range(_SOA_TIMEOUTS):
        env.timeout(50.0 * i)
    env.run()


def _scenario_pingpong(env: Environment) -> None:
    """Two processes rendezvous through capacity-1 stores (zero-delay)."""
    a_to_b = Store(env, capacity=1)
    b_to_a = Store(env, capacity=1)
    count = 4000

    def ping(env):
        for i in range(count):
            yield a_to_b.put(i)
            yield b_to_a.get()

    def pong(env):
        for _ in range(count):
            item = yield a_to_b.get()
            yield b_to_a.put(item)

    env.process(ping(env))
    env.process(pong(env))
    env.run()


def _scenario_many_processes(env: Environment) -> None:
    """5k concurrent clock processes, 20 ticks each (wide event front)."""
    def clock(env, period):
        for _ in range(20):
            yield env.timeout(period)

    for i in range(5000):
        env.process(clock(env, 1.0 + (i % 7) * 0.1))
    env.run()


#: ``(name, scenario, events)`` — *events* is the exact kernel event
#: count when it is analytic (spares a metered dry run over large
#: scenarios), or ``None`` to count via a metered dry run.
KERNEL_SCENARIOS = (
    ("timeouts", _scenario_timeouts, 100_000),
    ("pingpong", _scenario_pingpong, None),
    ("many_processes", _scenario_many_processes, None),
    ("soa_ticks", _scenario_soa_ticks, _SOA_TICKS + _SOA_TIMEOUTS),
)


def _count_events(scenario, events: int | None = None) -> int:
    """Exact kernel events processed by *scenario*.

    Uses the declared analytic count when available; otherwise a
    metered dry run.
    """
    if events is not None:
        return events
    tel = capture(trace=False, metrics=True)
    env = Environment(telemetry=tel)
    scenario(env)
    return int(tel.metrics.get("sim.events_processed").value)


def _sampling_env(until: float) -> Environment:
    """An Environment with the flight recorder armed and sampling live.

    The sampler's only probe reads the kernel's event count — the same
    read the run-level events/sec series performs — so ``--with-sampler``
    times the recorder's structural overhead (the self-rescheduling tick
    plus per-event counting), not probe-specific work.  *until* is the
    scenario's real simulated-time extent: scenarios shorter than one
    cadence schedule no tick and measure the recorder's per-event floor
    (the live event counter); ``timeouts`` spans ~199 cadences and
    exercises the tick machinery itself.
    """
    from repro.obs import DEFAULT_SAMPLE_EVERY, PeriodicSampler, Telemetry
    from repro.obs.timeseries import SeriesBank

    tel = Telemetry(series=SeriesBank())
    env = Environment(telemetry=tel)

    def probe(bank, now, env=env):
        bank.record("sim.events", now, float(env.events_processed or 0))

    PeriodicSampler(
        tel.series,
        every=DEFAULT_SAMPLE_EVERY,
        until=until,
        probes=(probe,),
    ).attach(env)
    return env


def measure_events_per_sec(
    repeats: int = 5, with_sampler: bool = False
) -> dict:
    """Best-of-*repeats* events/sec per scenario plus the pooled headline."""
    per_scenario: dict[str, dict] = {}
    total_events = 0
    total_seconds = 0.0
    for name, scenario, declared in KERNEL_SCENARIOS:
        events = _count_events(scenario, declared)
        best = float("inf")
        for _ in range(repeats):
            env = (
                _sampling_env(until=_SCENARIO_HORIZONS[name])
                if with_sampler
                else Environment(telemetry=NULL_TELEMETRY)
            )
            # Collector passes landing inside one mode's timing window
            # and not the other's swamp the few-percent deltas this gate
            # watches, so the timed region runs with the GC paused.
            gc.collect()
            gc.disable()
            try:
                t0 = time.perf_counter()
                scenario(env)
                best = min(best, time.perf_counter() - t0)
            finally:
                gc.enable()
            # The sampled run drains extra tick events; credit the
            # events it actually processed, not the dry-run count.
            if with_sampler:
                events = int(env.events_processed or events)
        per_scenario[name] = {
            "events": events,
            "seconds": round(best, 6),
            "events_per_sec": round(events / best, 1),
        }
        total_events += events
        total_seconds += best
    return {
        "scenarios": per_scenario,
        "events_per_sec": round(total_events / total_seconds, 1),
    }


def measure_decisions_per_sec(
    repeats: int = 3, with_sampler: bool = False
) -> dict:
    """Scheduler passes per wall second through a full experiment."""
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import run_experiment

    config = ExperimentConfig(**DECISION_CONFIG)
    best = float("inf")
    cycles = groups = 0
    for _ in range(repeats):
        telemetry = (
            capture(trace=False, metrics=False, series=True)
            if with_sampler
            else None
        )
        t0 = time.perf_counter()
        result = run_experiment(config, telemetry=telemetry)
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
            cycles = result.scheduler.learning_cycles
            groups = sum(
                a.groups_dispatched
                for a in getattr(result.scheduler, "agents", {}).values()
            ) or result.metrics.num_tasks
    return {
        "config": dict(DECISION_CONFIG),
        "cycles": cycles,
        "groups_dispatched": groups,
        "seconds": round(best, 6),
        "decisions_per_sec": round(cycles / best, 1),
    }


def run_throughput(with_sampler: bool = False) -> dict:
    """Measure both headline numbers and write them to ``benchmarks/out``."""
    payload = {
        "kernel": measure_events_per_sec(with_sampler=with_sampler),
        "decision_loop": measure_decisions_per_sec(with_sampler=with_sampler),
        "with_sampler": with_sampler,
    }
    payload["events_per_sec"] = payload["kernel"]["events_per_sec"]
    payload["decisions_per_sec"] = payload["decision_loop"]["decisions_per_sec"]
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(payload, indent=1))
    return payload


def check_against_baseline(payload: dict, min_ratio: float = 0.8) -> list[str]:
    """Compare *payload* to the committed baseline.

    Returns a list of human-readable failures (empty = pass).  A headline
    below ``min_ratio × baseline`` is a regression; the committed
    baseline predates the kernel fast path, so healthy builds should sit
    far above 1.0×.
    """
    if not BASELINE_PATH.exists():
        return [f"no committed baseline at {BASELINE_PATH}"]
    baseline = json.loads(BASELINE_PATH.read_text())
    failures = []
    for key in ("events_per_sec", "decisions_per_sec"):
        ref = baseline[key]
        cur = payload[key]
        ratio = cur / ref if ref else float("inf")
        line = f"{key}: {cur:,.0f} vs baseline {ref:,.0f} ({ratio:.2f}x)"
        print(line)
        if ratio < min_ratio:
            failures.append(f"regression: {line} < {min_ratio:.2f}x floor")
    if PRE_SOA_BASELINE_PATH.exists():
        pre = json.loads(PRE_SOA_BASELINE_PATH.read_text())["events_per_sec"]
        speedup = payload["events_per_sec"] / pre if pre else float("inf")
        print(
            f"events_per_sec speedup vs pre-SoA snapshot "
            f"({pre:,.0f}): {speedup:.1f}x"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed baseline; exit 1 on regression",
    )
    parser.add_argument(
        "--min-ratio", type=float, default=0.8,
        help="regression floor as a fraction of baseline (default 0.8)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the committed baseline from this run",
    )
    parser.add_argument(
        "--with-sampler", action="store_true",
        help="measure with the flight recorder's periodic sampler "
        "attached (its overhead must stay inside the --min-ratio floor)",
    )
    args = parser.parse_args(argv)
    if args.with_sampler and args.update_baseline:
        parser.error("--update-baseline must measure the uninstrumented build")

    payload = run_throughput(with_sampler=args.with_sampler)
    print(json.dumps(payload, indent=1))
    if args.update_baseline:
        BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
        BASELINE_PATH.write_text(json.dumps(payload, indent=1))
        print(f"baseline updated: {BASELINE_PATH}")
    if args.check:
        failures = check_against_baseline(payload, args.min_ratio)
        for failure in failures:
            print(failure, file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
