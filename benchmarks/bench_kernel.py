"""Micro-benchmarks of the discrete-event simulation kernel.

These time the substrate itself (event throughput, process switching,
store operations) so regressions in the kernel are visible independently
of the scheduling experiments.
"""

from repro.obs import NULL_TELEMETRY, capture
from repro.sim import Environment, Store


def bench_kernel_timeout_throughput(benchmark):
    """Schedule and drain 20k bare timeouts."""

    def run():
        env = Environment()
        for i in range(20_000):
            env.timeout(i % 97)
        env.run()
        return env.now

    result = benchmark(run)
    assert result == 96


def bench_kernel_timeout_throughput_null_recorder(benchmark):
    """The 20k-timeout drain with the null telemetry passed explicitly.

    Must track ``bench_kernel_timeout_throughput`` to within noise — the
    null path is one attribute check per event; compare the two
    trajectories to see the disabled-telemetry overhead.
    """

    def run():
        env = Environment(telemetry=NULL_TELEMETRY)
        for i in range(20_000):
            env.timeout(i % 97)
        env.run()
        return env.now

    result = benchmark(run)
    assert result == 96


def bench_kernel_timeout_throughput_instrumented(benchmark):
    """The 20k-timeout drain with live metrics collection.

    The gap between this and the null-recorder case is the cost of the
    per-event counter/gauge updates when observability is armed.
    """

    def run():
        tel = capture(trace=False, metrics=True)
        env = Environment(telemetry=tel)
        for i in range(20_000):
            env.timeout(i % 97)
        env.run()
        assert tel.metrics.get("sim.events_processed").value == 20_000
        return env.now

    result = benchmark(run)
    assert result == 96


def bench_kernel_process_switching(benchmark):
    """Two processes ping-pong through a rendezvous store 5k times."""

    def run():
        env = Environment()
        a_to_b = Store(env, capacity=1)
        b_to_a = Store(env, capacity=1)
        count = 5000

        def ping(env):
            for i in range(count):
                yield a_to_b.put(i)
                yield b_to_a.get()

        def pong(env):
            for _ in range(count):
                item = yield a_to_b.get()
                yield b_to_a.put(item)

        env.process(ping(env))
        env.process(pong(env))
        env.run()
        return count

    assert benchmark(run) == 5000


def bench_kernel_many_processes(benchmark):
    """1k concurrent clock processes, 20 ticks each."""

    def run():
        env = Environment()
        done = []

        def clock(env, period):
            for _ in range(20):
                yield env.timeout(period)
            done.append(period)

        for i in range(1000):
            env.process(clock(env, 1.0 + (i % 7) * 0.1))
        env.run()
        return len(done)

    assert benchmark(run) == 1000


def bench_kernel_store_contention(benchmark):
    """100 producers and 100 consumers over one bounded store."""

    def run():
        env = Environment()
        store = Store(env, capacity=8)
        got = []

        def producer(env, k):
            for i in range(20):
                yield env.timeout(0.01 * (k % 5))
                yield store.put((k, i))

        def consumer(env):
            while True:
                got.append((yield store.get()))

        for k in range(100):
            env.process(producer(env, k))
        for _ in range(100):
            env.process(consumer(env))
        env.run(until=1000.0)
        return len(got)

    assert benchmark(run) == 2000
