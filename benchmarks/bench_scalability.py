"""Scalability bench: end-to-end simulation cost vs platform size.

Times one Adaptive-RL run at the small, middle, and paper-maximum ends of
the §V.A platform ranges, so the wall-clock cost of scaling the target
system is tracked.
"""

import pytest

from repro.experiments import ExperimentConfig, default_platform, run_experiment

PLATFORMS = {
    "small (5 sites, 5-10 nodes)": dict(num_sites=5, nodes_per_site=(5, 10)),
    "medium (8 sites, 10-15 nodes)": dict(num_sites=8, nodes_per_site=(10, 15)),
    "paper-max (10 sites, 5-20 nodes)": dict(num_sites=10, nodes_per_site=(5, 20)),
}


@pytest.mark.parametrize("label", list(PLATFORMS))
def bench_scalability_platform(benchmark, label):
    cfg = ExperimentConfig(
        scheduler="adaptive-rl",
        num_tasks=600,
        platform=default_platform(**PLATFORMS[label]),
    )
    result = benchmark.pedantic(
        run_experiment, args=(cfg,), rounds=1, iterations=1
    )
    assert result.metrics.response.count == 600
