"""Figure 9 bench: utilization vs % learning cycles, heavily loaded.

Asserts the paper's shape: utilization rises over the learning cycles and
ends at 0.6 or above for both Adaptive-RL and Online RL.
"""

from repro.experiments import figure9, render_figure, shape_checks

from .conftest import BENCH_HEAVY


def bench_fig09_utilization_heavy(once):
    fig = once(figure9, BENCH_HEAVY, 1)
    print()
    print(render_figure(fig))
    checks = shape_checks(fig)
    for c in checks:
        print(c)
    assert all(c.passed for c in checks), "Figure 9 shape regression"
