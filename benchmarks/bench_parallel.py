"""Parallel engine bench: serial vs ``jobs=2/4`` campaign wall-clock.

Runs the same 4-seed Adaptive-RL grid serially and through the
:mod:`repro.parallel` engine at 2 and 4 workers, asserting record
equality along the way, and writes the three wall-clocks to
``benchmarks/out/parallel_wallclock.json`` so future PRs have a perf
trajectory baseline (a committed reference snapshot lives in
``benchmarks/baselines/``).

On a single-core host the parallel runs only pay the process-pool
overhead — the interesting number there is how small that overhead is;
the speedup shows on multicore hosts.

Run as a bench (``pytest benchmarks/bench_parallel.py --benchmark-only``)
or directly (``python benchmarks/bench_parallel.py``) to refresh the
baseline file.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.experiments.campaign import Campaign, grid
from repro.parallel import run_parallel

#: The ISSUE's bench shape: one scheduler, one task count, four seeds.
BENCH_GRID = dict(schedulers=["adaptive-rl"], task_counts=[400], seeds=[1, 2, 3, 4])

OUT_PATH = Path(__file__).parent / "out" / "parallel_wallclock.json"


def _comparable(record: dict) -> dict:
    return {k: v for k, v in record.items() if k != "wall_seconds"}


def run_comparison() -> dict:
    """Time serial vs jobs=2 vs jobs=4 on the 4-seed grid; verify records."""
    configs = grid(**BENCH_GRID)
    timings: dict = {}

    t0 = time.perf_counter()
    serial = Campaign("bench-serial").run(configs)
    timings["serial"] = time.perf_counter() - t0
    reference = [_comparable(r) for r in serial.records]

    for workers in (2, 4):
        t0 = time.perf_counter()
        result = run_parallel(configs, jobs=workers)
        timings[f"jobs{workers}"] = time.perf_counter() - t0
        assert [_comparable(r) for r in result.records] == reference, (
            f"jobs={workers} records diverged from serial"
        )

    payload = {
        "grid": BENCH_GRID,
        "cpu_count": os.cpu_count(),
        "wall_seconds": {k: round(v, 3) for k, v in timings.items()},
        "speedup_vs_serial": {
            k: round(timings["serial"] / v, 3)
            for k, v in timings.items()
            if k != "serial"
        },
    }
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(payload, indent=1))
    return payload


def bench_parallel_vs_serial(once):
    payload = once(run_comparison)
    assert set(payload["wall_seconds"]) == {"serial", "jobs2", "jobs4"}


if __name__ == "__main__":  # pragma: no cover - manual baseline refresh
    print(json.dumps(run_comparison(), indent=1))
