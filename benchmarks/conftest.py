"""Shared configuration for the benchmark suite.

Every bench regenerates one paper figure (or an ablation/micro study) at
a reduced-but-representative scale and asserts the paper's qualitative
shape on the result, so `pytest benchmarks/ --benchmark-only` both times
the harness and validates the reproduction.

Scale knobs live here; the full paper scale is run via
``python -m repro.experiments.cli`` (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

#: Reduced Figure 7/8 x-axis (full scale: 500..3000).
BENCH_TASK_COUNTS = (400, 1200, 2400)
#: Reduced heavy/light points (full scale: 3000 / 500).
BENCH_HEAVY = 2400
BENCH_LIGHT = 400
#: Reduced heterogeneity levels (full scale: 0.1..0.9 in steps of 0.2).
BENCH_H_LEVELS = (0.1, 0.5, 0.9)
BENCH_SEEDS = (1,)


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (figure sweeps are heavy)."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
