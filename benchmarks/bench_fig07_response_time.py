"""Figure 7 bench: average response time vs number of tasks.

Regenerates the paper's Figure 7 series (Adaptive-RL, Online RL,
Q+ learning, Prediction-based learning) and asserts its shape: Adaptive-RL
has the lowest AveRT, with a margin that grows with load.
"""

from repro.experiments import figure7, render_figure, shape_checks

from .conftest import BENCH_SEEDS, BENCH_TASK_COUNTS


def bench_fig07_response_time(once):
    fig = once(figure7, BENCH_TASK_COUNTS, BENCH_SEEDS)
    print()
    print(render_figure(fig))
    checks = shape_checks(fig)
    for c in checks:
        print(c)
    assert all(c.passed for c in checks), "Figure 7 shape regression"
