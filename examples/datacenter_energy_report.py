"""Data-center energy report: compare the four learning schedulers.

The paper's motivating scenario (§I): a heavily loaded multi-site
compute infrastructure where idle power is wasted energy.  This example
runs the paper's full comparison set — Adaptive-RL and the three learning
baselines — on one identical heavy workload and prints a per-scheduler
report: response time, ECS, deadline success, and where the energy went
(busy / idle / gated).

Usage::

    python examples/datacenter_energy_report.py [num_tasks] [seed]
"""

import sys

from repro import ExperimentConfig, run_experiment
from repro.experiments.schedulers import PAPER_COMPARISON


def main() -> None:
    num_tasks = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7

    print(f"Heavy workload: {num_tasks} tasks, seed {seed}")
    header = (
        f"{'scheduler':28s}{'AveRT':>9}{'ECS(M)':>9}{'success':>9}"
        f"{'util':>7}{'busy%':>7}{'idle%':>7}{'sleep%':>8}"
    )
    print(header)
    print("-" * len(header))

    rows = []
    for name in PAPER_COMPARISON:
        cfg = ExperimentConfig(scheduler=name, num_tasks=num_tasks, seed=seed)
        result = run_experiment(cfg)
        m = result.metrics
        e = m.energy
        total_t = e.busy_time + e.idle_time + e.sleep_time
        rows.append((name, m))
        print(
            f"{m.scheduler:28s}{m.avert:>9.1f}{m.ecs / 1e6:>9.3f}"
            f"{m.success_rate:>9.1%}{m.utilization:>7.1%}"
            f"{e.busy_time / total_t:>7.1%}{e.idle_time / total_t:>7.1%}"
            f"{e.sleep_time / total_t:>8.1%}"
        )

    adaptive = next(m for n, m in rows if n == "adaptive-rl")
    print()
    print("Relative to Adaptive-RL:")
    for name, m in rows:
        if name == "adaptive-rl":
            continue
        rt = (m.avert - adaptive.avert) / adaptive.avert
        ecs = (m.ecs - adaptive.ecs) / adaptive.ecs
        print(f"  {m.scheduler:28s} AveRT {rt:+.1%}   ECS {ecs:+.1%}")


if __name__ == "__main__":
    main()
