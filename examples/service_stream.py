"""Scheduler-as-a-service: stream tasks through a bounded ingress.

The batch harness hands the scheduler its whole workload up front; the
service inverts that.  Tasks stream in one at a time through a bounded
admission queue, the kernel advances in slices between arrivals, and a
crash-safe journal records every admission — so a killed process can
resume and finish with exactly-once semantics and *bit-identical*
metrics.

This example drives the programmatic API three ways:

1. stream a workload end to end under backpressure (tiny queue);
2. crash the service mid-stream, then resume from the journal alone;
3. show both lives land on the same metric bits as the batch runner.

Usage::

    python examples/service_stream.py [num_tasks] [seed]
"""

import sys
import tempfile
from pathlib import Path

from repro.experiments import ExperimentConfig, run_experiment
from repro.service import SchedulerService
from repro.sim import RandomStreams
from repro.workload import WorkloadGenerator


def producer(engine):
    """Lazily stream the seeded workload the batch runner would build."""
    return WorkloadGenerator(
        engine.workload_spec(), RandomStreams(engine.config.seed)
    ).iter_tasks()


def main() -> int:
    num_tasks = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 42
    config = ExperimentConfig(
        scheduler="adaptive-rl",
        seed=seed,
        num_tasks=num_tasks,
        arrival_period=2.0 * num_tasks,
    )

    # -- 1. one service life under constant backpressure ---------------
    service = SchedulerService(config, producer, max_queue=8)
    report = service.run()
    print(f"streamed   : {report.admitted}/{num_tasks} tasks admitted")
    print(f"backpressure waits : {report.backpressure_waits}")
    print(f"queue high-water   : {report.depth_high} (bound 8)")
    print(f"completed  : {report.completed}  AveRT {report.metrics.avert:.3f}")

    # -- 2. crash mid-stream, resume from the journal ------------------
    with tempfile.TemporaryDirectory() as tmp:
        journal_dir = Path(tmp) / "svc"
        life1 = SchedulerService(
            config, producer, max_queue=8, journal_dir=journal_dir,
            slice_len=config.arrival_period / 40.0,
        )
        for _ in range(6):  # a few pump/advance slices, then die
            life1.step()
        life1.journal.close()  # simulated kill -9: only fsynced admits survive
        print(
            f"crashed    : after {life1.ingress.admitted} admissions "
            "(journal is the only survivor)"
        )

        life2 = SchedulerService(
            config,
            producer,
            max_queue=8,
            journal_dir=journal_dir,
            resume=True,
            slice_len=config.arrival_period / 40.0,
        )
        resumed = life2.run()
        print(
            f"resumed    : recovered {resumed.recovered} pending, "
            f"finished {resumed.completed}/{num_tasks}"
        )

    # -- 3. the service is bit-identical to the batch runner -----------
    batch = run_experiment(config).metrics
    for label, streamed in (("single", report), ("resumed", resumed)):
        match = (
            streamed.metrics.avert == batch.avert
            and streamed.metrics.ecs == batch.ecs
        )
        verdict = "bit-identical to batch" if match else "DIVERGED"
        print(f"parity ({label}) : {verdict}")
        if not match:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
