"""Heterogeneity study: how resource diversity affects Adaptive-RL.

Reproduces the spirit of the paper's Experiment 3 interactively: sweep
the service coefficient of variation of the platform and report success
rate and energy at a chosen load, with 95 % confidence intervals over
multiple seeds.

Usage::

    python examples/heterogeneity_study.py [num_tasks] [seeds...]
"""

import sys

from repro.experiments import ExperimentConfig, default_platform
from repro.experiments.sweeps import sweep

LEVELS = (0.1, 0.3, 0.5, 0.7, 0.9)


def main() -> None:
    num_tasks = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    seeds = tuple(int(s) for s in sys.argv[2:]) or (1, 2, 3)

    base = ExperimentConfig(scheduler="adaptive-rl", num_tasks=num_tasks)
    variations = {
        f"h={h}": (
            lambda c, h=h: c.with_overrides(
                platform=default_platform(heterogeneity_cv=h)
            )
        )
        for h in LEVELS
    }

    print(
        f"Adaptive-RL, {num_tasks} tasks, seeds {list(seeds)} "
        f"(95% CIs over seeds)"
    )
    header = f"{'heterogeneity':>14}{'success rate':>22}{'ECS (M)':>20}{'AveRT':>20}"
    print(header)
    print("-" * len(header))
    points = sweep(base, variations, seeds=seeds)
    for label, p in points.items():
        ecs = p.ecs
        print(
            f"{label:>14}"
            f"{p.success_rate.mean:>14.3f} ±{p.success_rate.half_width:<6.3f}"
            f"{ecs.mean / 1e6:>12.3f} ±{ecs.half_width / 1e6:<6.3f}"
            f"{p.avert.mean:>12.1f} ±{p.avert.half_width:<6.1f}"
        )

    first, last = points["h=0.1"], points[f"h={LEVELS[-1]}"]
    drop = first.success_rate.mean - last.success_rate.mean
    print()
    print(
        f"Success rate drops by {drop:.1%} from h=0.1 to h={LEVELS[-1]} — "
        "learning takes longer to track a more diverse platform (paper §V, "
        "Experiment 3)."
    )


if __name__ == "__main__":
    main()
