"""Quickstart: run the Adaptive-RL scheduler on a synthetic PDCS workload.

Usage::

    python examples/quickstart.py [num_tasks] [seed]

Builds the paper's platform (§V.A), generates a Poisson workload, runs
the Adaptive-RL scheduler (§IV) to completion, and prints the headline
metrics: average response time (Eq. 4), system energy ECS (Eqs. 5–6),
deadline success rate, and utilization.
"""

import sys

from repro import ExperimentConfig, run_experiment


def main() -> None:
    num_tasks = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 42

    config = ExperimentConfig(
        scheduler="adaptive-rl",
        num_tasks=num_tasks,
        seed=seed,
    )
    print(f"Running Adaptive-RL on {num_tasks} tasks (seed {seed})...")
    result = run_experiment(config)
    m = result.metrics

    print()
    print(f"platform        : {result.system}")
    print(f"completed tasks : {m.response.count}/{m.num_tasks}")
    print(f"makespan        : {m.makespan:.1f} time units")
    print(f"AveRT (Eq. 4)   : {m.avert:.2f} time units "
          f"(wait {m.response.mean_wait:.2f} + exec {m.response.mean_execution:.2f})")
    print(f"ECS             : {m.ecs / 1e6:.3f} M units")
    print(f"success rate    : {m.success_rate:.1%} of submitted tasks met their deadline")
    print(f"utilization     : {m.utilization:.1%} of powered processor time was busy")
    print(f"efficiency      : {m.efficiency}")
    print(f"learning cycles : {m.learning_cycles}")

    sched = result.scheduler
    if sched.memory is not None:
        best = sched.memory.best_experience()
        if best is not None:
            print(
                f"best remembered action: {best.action} "
                f"(l_val={best.l_val:.1f}, from {best.agent_id})"
            )

    from repro.metrics import priority_report, render_priority_report

    print()
    print("per-priority breakdown:")
    print(render_priority_report(priority_report(result.tasks)))


if __name__ == "__main__":
    main()
