"""Full reproduction run: regenerate the paper's figures with artifacts.

Regenerates Figures 7–12 (at a configurable scale), saves each figure's
data as JSON, runs the paper-shape checks, and writes a campaign-style
markdown summary — everything EXPERIMENTS.md is built from, as a single
script.

Usage::

    python examples/full_reproduction.py [out_dir] [scale]

``scale`` ∈ {"quick", "paper"} (default quick).
"""

import sys
from pathlib import Path

from repro.experiments import (
    comparison_sweep,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    render_figure,
    save_figure,
    shape_checks,
)
from repro.experiments.figures import HEAVY_TASKS, LIGHT_TASKS, PAPER_TASK_COUNTS

QUICK_COUNTS = (500, 1500, 3000)


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("reproduction_out")
    scale = sys.argv[2] if len(sys.argv) > 2 else "quick"
    if scale not in ("quick", "paper"):
        raise SystemExit(f"unknown scale {scale!r}; use quick or paper")
    counts = PAPER_TASK_COUNTS if scale == "paper" else QUICK_COUNTS
    heavy = HEAVY_TASKS if scale == "paper" else 2000
    out_dir.mkdir(parents=True, exist_ok=True)

    figures = []
    print(f"Regenerating Figures 7–12 at {scale} scale → {out_dir}/")
    sweep = comparison_sweep(counts, seeds=(1,))
    figures.append(figure7(counts, sweep=sweep))
    figures.append(figure8(counts, sweep=sweep))
    figures.append(figure9(num_tasks=heavy))
    figures.append(figure10(num_tasks=LIGHT_TASKS))
    figures.append(figure11(heavy_tasks=heavy))
    figures.append(figure12(heavy_tasks=heavy))

    all_checks = []
    report_lines = ["# Reproduction report", ""]
    for fig in figures:
        save_figure(fig, out_dir / f"{fig.figure_id}.json")
        table = render_figure(fig)
        checks = shape_checks(fig)
        all_checks.extend(checks)
        print()
        print(table)
        for c in checks:
            print(c)
        report_lines.append("```")
        report_lines.append(table)
        report_lines.append("```")
        report_lines.extend(str(c) for c in checks)
        report_lines.append("")

    passed = sum(1 for c in all_checks if c.passed)
    summary = f"shape checks: {passed}/{len(all_checks)} passed"
    report_lines.append(summary)
    (out_dir / "report.md").write_text("\n".join(report_lines))
    print()
    print(summary)
    print(f"artifacts: {sorted(p.name for p in out_dir.iterdir())}")


if __name__ == "__main__":
    main()
