"""Extending the library: plug a custom scheduler into the harness.

Demonstrates the extension API: subclass
:class:`repro.baselines.SingletonScheduler` (or :class:`repro.core.base.
Scheduler` for full control), register it under a name, and run it
through the same experiment harness and metrics as the paper's
schedulers.

The example policy is "POWER-SAVER": assign every task to the most
energy-frugal node (fewest processors, slowest — lowest idle draw) that
can still meet its deadline, else the fastest node.  It is deliberately
simple; the point is the plumbing.

Usage::

    python examples/custom_scheduler_plugin.py [num_tasks]
"""

import sys
from typing import Optional

from repro import ExperimentConfig, register_scheduler, run_experiment
from repro.baselines import SingletonScheduler
from repro.cluster import ComputeNode
from repro.workload import Task


class PowerSaverScheduler(SingletonScheduler):
    """Greedy deadline-aware consolidation onto frugal nodes."""

    name = "POWER-SAVER"

    def _pick_node(self, task: Task) -> Optional[ComputeNode]:
        assert self.system is not None and self.env is not None
        open_nodes = [n for n in self.system.nodes if n.free_slots > 0]
        if not open_nodes:
            return None
        slack = task.deadline - self.env.now

        def mean_speed(node: ComputeNode) -> float:
            return node.total_speed_mips / node.num_processors

        def feasible(node: ComputeNode) -> bool:
            est_wait = node.pending_size_mi / node.total_speed_mips
            return est_wait + task.size_mi / mean_speed(node) <= slack

        frugal_first = sorted(
            open_nodes,
            key=lambda n: (n.total_speed_mips, n.node_id),
        )
        for node in frugal_first:
            if feasible(node):
                return node
        # Nothing frugal is feasible: take the fastest node.
        return frugal_first[-1]


def main() -> None:
    num_tasks = int(sys.argv[1]) if len(sys.argv) > 1 else 800

    register_scheduler("power-saver", PowerSaverScheduler)

    print(f"{'scheduler':16s}{'AveRT':>10}{'ECS (M)':>10}{'success':>10}")
    for name in ("power-saver", "adaptive-rl"):
        cfg = ExperimentConfig(scheduler=name, num_tasks=num_tasks, seed=11)
        m = run_experiment(cfg).metrics
        print(
            f"{m.scheduler:16s}{m.avert:>10.1f}{m.ecs / 1e6:>10.3f}"
            f"{m.success_rate:>10.1%}"
        )
    print()
    print(
        "The harness (runner, metrics, figures, sweeps) works identically "
        "for registered custom schedulers."
    )


if __name__ == "__main__":
    main()
