"""Workload traces: freeze a workload to JSON and replay it anywhere.

The paper assumes task profiles are available from "job profiling,
analytical models or historical information" (§III.A).  This example
shows the trace API: generate a workload once, save it, reload it, and
drive two schedulers with the byte-identical task stream — the clean way
to compare policies outside the seeded harness.

Usage::

    python examples/trace_replay.py [num_tasks]
"""

import sys
import tempfile
from pathlib import Path

from repro.cluster import PlatformSpec, build_system
from repro.experiments import make_scheduler
from repro.metrics import collect_metrics
from repro.sim import Environment, RandomStreams
from repro.workload import (
    WorkloadGenerator,
    WorkloadSpec,
    load_trace,
    save_trace,
    summarize,
)


def replay(trace_path: Path, scheduler_name: str, seed: int = 3):
    """Run one scheduler against the frozen trace."""
    env = Environment()
    streams = RandomStreams(seed=seed)
    system = build_system(env, PlatformSpec(num_sites=3), streams)
    tasks = load_trace(trace_path)

    scheduler = make_scheduler(scheduler_name)
    scheduler.attach(env, system, streams)
    done = scheduler.expect(len(tasks))

    def arrivals():
        for t in tasks:
            if env.now < t.arrival_time:
                yield env.timeout(t.arrival_time - env.now)
            scheduler.submit(t)

    env.process(arrivals())
    env.run(until=done)
    for proc in system.processors:
        proc.meter.finalize(env.now)
    return collect_metrics(scheduler, system, tasks)


def main() -> None:
    num_tasks = int(sys.argv[1]) if len(sys.argv) > 1 else 400

    spec = WorkloadSpec(
        num_tasks=num_tasks,
        mean_interarrival=2.0,
        size_range_mi=(600.0 * 24, 7200.0 * 24),
    )
    tasks = WorkloadGenerator(spec, RandomStreams(seed=123)).generate()
    stats = summarize(tasks)
    print(
        f"Generated {stats.num_tasks} tasks: mean size "
        f"{stats.mean_size_mi / 1e3:.0f}k MI, priorities "
        + ", ".join(
            f"{p.label}={frac:.0%}"
            for p, frac in stats.priority_fractions.items()
        )
    )

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "workload.json"
        save_trace(tasks, trace_path)
        print(f"Trace frozen to {trace_path.name} "
              f"({trace_path.stat().st_size / 1024:.0f} KiB)\n")

        print(f"{'scheduler':16s}{'AveRT':>10}{'ECS (M)':>10}{'success':>10}")
        for name in ("adaptive-rl", "edf"):
            m = replay(trace_path, name)
            print(
                f"{m.scheduler:16s}{m.avert:>10.1f}{m.ecs / 1e6:>10.3f}"
                f"{m.success_rate:>10.1%}"
            )


if __name__ == "__main__":
    main()
