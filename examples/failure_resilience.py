"""Failure resilience: crash-stop nodes, resubmitted tasks, power timeline.

The paper motivates energy management partly through reliability
("system overheating causes system freeze and frequent system
failures", §I).  This example injects exponential node failures while
Adaptive-RL runs, shows that every task still completes exactly once
(abandoned work is resubmitted transparently), and renders the
instantaneous platform power as an ASCII timeline.

Usage::

    python examples/failure_resilience.py [num_tasks] [mtbf]
"""

import sys

from repro.cluster import FailureInjector, FailureModel, PlatformSpec, build_system
from repro.core import AdaptiveRLScheduler
from repro.metrics import TimelineRecorder, collect_metrics
from repro.sim import Environment, RandomStreams
from repro.workload import WorkloadGenerator, WorkloadSpec


def main() -> None:
    num_tasks = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    mtbf = float(sys.argv[2]) if len(sys.argv) > 2 else 800.0

    env = Environment()
    streams = RandomStreams(seed=21)
    system = build_system(
        env,
        PlatformSpec(num_sites=3, nodes_per_site=(4, 6), procs_per_node=(4, 6)),
        streams,
    )
    tasks = WorkloadGenerator(
        WorkloadSpec(
            num_tasks=num_tasks,
            mean_interarrival=2500.0 / num_tasks,
            size_range_mi=(600.0 * 24, 7200.0 * 24),
        ),
        streams,
    ).generate()

    scheduler = AdaptiveRLScheduler()
    scheduler.attach(env, system, streams)
    done = scheduler.expect(len(tasks))
    model = FailureModel(mean_time_between_failures=mtbf, mean_time_to_repair=60.0)
    injector = FailureInjector(env, system.nodes, model, streams)
    recorder = TimelineRecorder(env, system, interval=10.0, scheduler=scheduler)

    def arrivals():
        for t in tasks:
            if env.now < t.arrival_time:
                yield env.timeout(t.arrival_time - env.now)
            scheduler.submit(t)

    env.process(arrivals())
    env.run(until=done)
    for proc in system.processors:
        proc.meter.finalize(env.now)
    metrics = collect_metrics(scheduler, system, tasks)

    print(f"platform         : {system}  (node availability {model.availability:.1%})")
    print(f"failures injected: {injector.failures_injected} "
          f"(repairs {injector.repairs_completed})")
    print(f"tasks resubmitted: {scheduler.tasks_resubmitted}")
    print(f"completed        : {metrics.response.count}/{num_tasks} "
          f"(every task exactly once)")
    print(f"AveRT            : {metrics.avert:.1f}   "
          f"success: {metrics.success_rate:.1%}   "
          f"ECS: {metrics.ecs / 1e6:.3f}M")
    print()
    print("instantaneous platform power:")
    print(recorder.ascii_power_plot(width=70, height=8))


if __name__ == "__main__":
    main()
